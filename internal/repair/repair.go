// Package repair maintains redundancy in the epidemic persistent-state
// layer, following §III-A's recipe to the letter:
//
//  1. A node periodically estimates how many nodes are responsible for
//     its sieve ranges using random walks — at sieve (range) granularity,
//     not per tuple ("obtaining an estimate of how many nodes have a
//     given sieve ... suffices. This drastically reduces random walk
//     length and the number of random walks needed").
//  2. Holders discovered by the walks synchronise directly: digests
//     first, then key-level version exchange, then tuple transfer ("have
//     nodes responsible to the same key space (discovered by the random
//     walk procedure) check tuple redundancy directly between them and
//     restore redundancy as necessary").
//  3. Replica deficits only trigger re-replication after a grace window,
//     because churn is dominated by transient reboots ("redundancy
//     constrains can be relaxed as the vast majority of nodes are
//     expected to recover within a small time window").
//  4. When a deficit persists, the node recruits a random peer to adopt
//     the range — "it is only a matter of adjusting the sieve grain" —
//     shipping the current range content along.
package repair

import (
	"math/rand"
	"sort"

	"datadroplets/internal/membership"
	"datadroplets/internal/metrics"
	"datadroplets/internal/node"
	"datadroplets/internal/randomwalk"
	"datadroplets/internal/sieve"
	"datadroplets/internal/sim"
	"datadroplets/internal/store"
	"datadroplets/internal/tuple"
)

// Config tunes the redundancy manager.
type Config struct {
	// Replication is the target copy count r.
	Replication int
	// NEst supplies the system-size estimate N̂.
	NEst func() float64
	// Walks is the number of random walks per range check. Zero means 32.
	Walks int
	// TTL is the walk length. Zero means 8.
	TTL int
	// CheckEvery is the number of rounds between range checks (each
	// check probes one of the node's arcs, round-robin). Zero means 10.
	CheckEvery int
	// WaitRounds is how long to wait for walk results before judging.
	// Zero means TTL+4.
	WaitRounds int
	// Grace is how many rounds a deficit must persist before the node
	// recruits — the transient-churn allowance. Zero means 20.
	Grace int
	// SyncPeers bounds how many discovered holders are synced per check.
	// Zero means 2.
	SyncPeers int
	// MaxPush bounds tuples per transfer message. Zero means 512.
	MaxPush int
	// OrphanBatch bounds how many orphaned tuples (stored locally but no
	// longer inside the node's responsibility, e.g. after the sieve
	// narrowed with a growing N̂) are checked per cycle. Zero means 4.
	OrphanBatch int
	// OrphanRecheck is how many rounds an orphan rests after being
	// handed off before it is re-examined. Zero means 100.
	OrphanRecheck int

	// SegBits enables segmented range sync: arcs are summarised as
	// 2^SegBits sub-range digests and reconciliation recurses only into
	// mismatching segments (a digest tree over the arc). It also enables
	// the staleness-priority scheduler: arcs with recent digest
	// mismatches are re-synced every HotSyncEvery rounds instead of
	// waiting for their round-robin CheckEvery turn. Zero keeps the
	// legacy whole-arc SyncReq handshake, byte-identical to before.
	SegBits int
	// SegLeafKeys is the segment size (in locally stored keys) at which
	// recursion stops and key-level versions are exchanged. Zero means 16.
	SegLeafKeys int
	// HotSyncEvery is the round interval of priority re-syncs for arcs
	// with outstanding mismatches (only with SegBits > 0). Zero means 3.
	HotSyncEvery int
	// HotBatch bounds priority re-syncs per interval. Zero means 2.
	HotBatch int
	// HotRetire drops a hot arc after that many re-syncs without a clean
	// confirmation (the peer may be gone). Zero means 12.
	HotRetire int

	// SupersedeEvery enables retention-aware supersession: every that
	// many rounds the node sends (key, version) hints for a window of
	// its store to a few sampled peers. A responsible peer holding an
	// equal-or-newer version lets a *bystander* copy (held outside the
	// node's responsibility, e.g. a write publisher's last-resort
	// retention) drop; a peer that is behind gets the newer tuple
	// pushed; and any peer holding strictly newer refreshes the hinted
	// copy in place — version-level anti-entropy that reaches even keys
	// in rarely-checked adopted slivers. Zero disables (legacy
	// behaviour: bystander copies only leave via the orphan walk sweep).
	SupersedeEvery int
	// SupersedeBatch bounds hinted keys per supersession exchange. Zero
	// means 8.
	SupersedeBatch int
	// SupersedePeers is how many sampled peers receive each hint batch.
	// In an unstructured overlay only a fraction of peers covers a given
	// key, so fanning the same batch out to a few peers multiplies the
	// chance of reaching a keeper per sweep. Zero means 2.
	SupersedePeers int
	// SupersedeMaxEvery caps the supersession sweep backoff. The sweep
	// starts at SupersedeEvery and doubles its gap after every round of
	// hints that surfaces no divergence, so a converged idle cluster's
	// supersession traffic decays toward zero instead of paying the
	// uniform cadence forever; any observed mismatch (a copy retired, a
	// peer behind, a newer version learned) snaps the cadence back to
	// SupersedeEvery. Zero means 64×SupersedeEvery.
	SupersedeMaxEvery int
}

func (c Config) normalized() Config {
	if c.Replication < 1 {
		c.Replication = 1
	}
	if c.Walks == 0 {
		c.Walks = 32
	}
	if c.TTL == 0 {
		c.TTL = 8
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 10
	}
	if c.WaitRounds == 0 {
		c.WaitRounds = c.TTL + 4
	}
	if c.Grace == 0 {
		c.Grace = 20
	}
	if c.SyncPeers == 0 {
		c.SyncPeers = 2
	}
	if c.MaxPush == 0 {
		c.MaxPush = 512
	}
	if c.OrphanBatch == 0 {
		c.OrphanBatch = 4
	}
	if c.OrphanRecheck == 0 {
		c.OrphanRecheck = 100
	}
	if c.SegLeafKeys == 0 {
		c.SegLeafKeys = 16
	}
	if c.HotSyncEvery == 0 {
		c.HotSyncEvery = 3
	}
	if c.HotBatch == 0 {
		c.HotBatch = 2
	}
	if c.HotRetire == 0 {
		c.HotRetire = 12
	}
	if c.SupersedeBatch == 0 {
		c.SupersedeBatch = 8
	}
	if c.SupersedePeers == 0 {
		c.SupersedePeers = 2
	}
	if c.SupersedeMaxEvery == 0 && c.SupersedeEvery > 0 {
		c.SupersedeMaxEvery = 64 * c.SupersedeEvery
	}
	return c
}

// Protocol messages.
type (
	// SyncReq opens a range synchronisation: "here is my digest for arc".
	SyncReq struct {
		Arc    node.Arc
		Digest uint64
	}
	// SyncVersions answers a digest mismatch with key-level versions.
	// Coverage, when non-nil, lists the responder's responsibility arcs
	// at reply time: the receiver then skips pushing content whose point
	// the responder does not cover (the responder would refuse it as a
	// would-be bystander copy anyway), which is what stops partially-
	// overlapping peers from re-shipping boundary content forever. A nil
	// Coverage keeps the legacy push-everything semantics.
	SyncVersions struct {
		Arc      node.Arc
		Versions map[string]tuple.Version
		Coverage []node.Arc
	}
	// SyncPull requests full tuples for keys.
	SyncPull struct{ Keys []string }
	// SyncPush delivers tuples; the receiver applies them under LWW.
	SyncPush struct{ Tuples []*tuple.Tuple }
	// AdoptReq recruits the receiver to take responsibility for an arc,
	// shipping the sender's content for it.
	AdoptReq struct {
		Arc    node.Arc
		Tuples []*tuple.Tuple
	}

	// SegSyncReq opens a segmented synchronisation (SegBits > 0): the
	// arc summarised as equal sub-range digests. The receiver compares
	// against its own segment vector and answers mismatching segments
	// with either key-level versions (small segments) or a recursive
	// SegSyncReq one level down the digest tree.
	SegSyncReq struct {
		Arc     node.Arc
		Digests []uint64
	}
	// SegSyncResp reports the comparison outcome for the whole request:
	// Clean means every segment matched. The requester's staleness-
	// priority scheduler keys off it — a dirty arc is re-synced every
	// HotSyncEvery rounds until a clean confirmation arrives.
	SegSyncResp struct {
		Arc   node.Arc
		Clean bool
	}

	// KeyVersion is one supersession hint: "I hold this version of this
	// key" — what the receiver answers depends on which side is
	// responsible and who is fresher (see SupersedeResp).
	KeyVersion struct {
		Key     string
		Version tuple.Version
	}
	// SupersedeQuery carries bystander (key, version) hints to a peer.
	SupersedeQuery struct {
		Hints []KeyVersion
	}
	// SupersedeResp answers the hints the receiver can say something
	// useful about: Held lists keys it covers and stores at an
	// equal-or-newer version (the bystander may drop its copy), Want
	// lists keys it holds or covers at an older version (the hinting
	// node pushes its newer tuple), and Newer carries tuples the
	// responder holds at a strictly newer version than hinted — whether
	// or not it covers them — so stale bystander copies converge to the
	// latest version even before a keeper is found.
	SupersedeResp struct {
		Held  []KeyVersion
		Want  []string
		Newer []*tuple.Tuple
	}
)

// Responders accumulates which replicas answered a read with which
// version, and issues at-most-once SyncPush repairs of the winning
// tuple to the stale ones. The soft-node and epidemic read paths share
// it so the read-repair selection rule lives in exactly one place.
type Responders []responder

type responder struct {
	id       node.ID
	version  tuple.Version
	repaired bool
}

// Observe records one responder's answered version.
func (rs *Responders) Observe(id node.ID, v tuple.Version) {
	*rs = append(*rs, responder{id: id, version: v})
}

// Repair pushes winner to every recorded responder whose replied
// version it supersedes, marking each repaired at most once (a newer
// winner arriving later repairs the responders recorded before it).
// fired counts the pushes issued.
func (rs Responders) Repair(winner *tuple.Tuple, fired *metrics.Counter) []sim.Envelope {
	var out []sim.Envelope
	for i := range rs {
		r := &rs[i]
		if r.repaired || !r.version.Less(winner.Version) {
			continue
		}
		r.repaired = true
		fired.Inc()
		out = append(out, sim.Envelope{To: r.id, Msg: SyncPush{Tuples: []*tuple.Tuple{winner}}})
	}
	return out
}

// pendingCheck tracks an outstanding walk probe for one arc.
type pendingCheck struct {
	arc        node.Arc
	setID      uint64
	launchedAt sim.Round
}

// Manager is the per-node redundancy maintenance machine. It also owns
// the node's *effective* responsibility: the base sieve's arcs plus any
// adopted arcs from recruitment.
type Manager struct {
	self    node.ID
	rng     *rand.Rand
	base    sieve.ArcSieve
	st      *store.Store
	walker  *randomwalk.Walker
	sampler membership.Sampler
	cfg     Config

	adopted      []node.Arc
	deficitSince map[node.Point]sim.Round // arc start -> first round deficit seen
	pending      []pendingCheck
	arcCursor    int
	probeSpin    uint64 // rotates the walk-probe point across arc eighths

	// Orphan handoff state: stored tuples that drifted outside the
	// node's responsibility (sieve arcs move with N̂) still need their
	// redundancy guaranteed by whoever covers them now.
	orphanCursor   string
	pendingOrphans []pendingOrphan
	orphanDone     map[string]sim.Round

	// hot is the staleness-priority schedule (SegBits > 0): arcs whose
	// last digest comparison mismatched, keyed by arc, with the peer the
	// mismatch was observed against. Hot arcs are re-synced every
	// HotSyncEvery rounds until a clean confirmation clears them.
	hot map[node.Arc]*hotArc

	// checkQueue holds arcs this node just learned it may be behind on —
	// a pushed tuple applied inside its responsibility, or a supersession
	// hint it could not confirm. They are walk-checked at priority (next
	// HotSyncEvery tick) instead of waiting their round-robin turn.
	checkQueue []node.Arc
	queued     map[node.Arc]bool

	// verBuf is the reusable reconciliation buffer: reconcile re-fills
	// it from the store each time instead of allocating a fresh
	// key→version map per exchange.
	verBuf []store.VersionEntry

	// supersedeCursor walks the store across supersession sweeps.
	supersedeCursor string
	// Supersession-sweep backoff state: the next sweep fires at
	// supersedeNext; supersedeGap doubles (capped at SupersedeMaxEvery)
	// after each sweep, and any observed divergence since the last sweep
	// (diverged) snaps the gap back to SupersedeEvery. now mirrors the
	// round clock at Tick/Handle entry so noteDivergence can pull the
	// next sweep forward without threading the clock through every
	// handler.
	supersedeGap  int
	supersedeNext sim.Round
	diverged      bool
	now           sim.Round
	// confirms records, per bystander key, the first keeper that
	// answered Held: the copy is only released when a *second, distinct*
	// keeper confirms, so one keeper crashing right after its
	// confirmation cannot take the sole surviving latest copy with it.
	confirms map[string]node.ID

	// Counters for experiment C7.
	Checks    int64
	Syncs     int64
	Pushed    int64 // tuples shipped to peers
	Recruits  int64
	Abandoned int64 // adopted arcs released after overshoot
	Handoffs  int64 // orphaned tuples pushed to their current coverers

	// Repair-traffic counters surfaced in ddbench scenario rows.
	Segments      metrics.Counter // sub-range digests exchanged (segmented sync)
	Superseded    metrics.Counter // bystander copies dropped after a Held answer
	Sweeps        metrics.Counter // supersession sweeps actually fired (backoff-visible)
	CoverageSkips metrics.Counter // pushes suppressed because the peer's coverage excludes the key
}

// hotArc is one staleness-priority schedule entry.
type hotArc struct {
	peer  node.ID
	tries int
}

type pendingOrphan struct {
	key        string
	setID      uint64
	launchedAt sim.Round
}

var _ sim.Machine = (*Manager)(nil)

// New builds a Manager. The walker must belong to the same node and be
// driven by the same composite machine (walk messages are routed to it,
// repair messages here).
func New(self node.ID, rng *rand.Rand, base sieve.ArcSieve, st *store.Store,
	walker *randomwalk.Walker, sampler membership.Sampler, cfg Config) *Manager {
	return &Manager{
		self:         self,
		rng:          rng,
		base:         base,
		st:           st,
		walker:       walker,
		sampler:      sampler,
		cfg:          cfg.normalized(),
		deficitSince: make(map[node.Point]sim.Round),
		orphanDone:   make(map[string]sim.Round),
		hot:          make(map[node.Arc]*hotArc),
		queued:       make(map[node.Arc]bool),
		confirms:     make(map[string]node.ID),
		supersedeGap: cfg.normalized().SupersedeEvery,
	}
}

// Arcs returns the node's effective responsibility: base sieve arcs plus
// adopted arcs.
func (m *Manager) Arcs() []node.Arc {
	out := append([]node.Arc(nil), m.base.Arcs()...)
	out = append(out, m.adopted...)
	return out
}

// Covers reports whether the effective responsibility contains p. Walk
// probes and orphan sweeps call this per tuple/point, so it checks the
// base and adopted arcs in place rather than materialising Arcs().
func (m *Manager) Covers(p node.Point) bool {
	if pc, ok := m.base.(sieve.PointCoverer); ok {
		if pc.CoversPoint(p) {
			return true
		}
	} else {
		for _, a := range m.base.Arcs() {
			if a.Contains(p) {
				return true
			}
		}
	}
	for _, a := range m.adopted {
		if a.Contains(p) {
			return true
		}
	}
	return false
}

// coversAnyOf reports whether any part of the effective responsibility
// intersects the arc — segmented sync uses it to tell shared segments
// (both sides accountable for the range) from foreign ones (content the
// requester holds beyond this node's arcs, which is not this node's
// debt and must not keep the comparison dirty).
func (m *Manager) coversAnyOf(arc node.Arc) bool {
	for _, a := range m.base.Arcs() {
		if a.Intersects(arc) {
			return true
		}
	}
	for _, a := range m.adopted {
		if a.Intersects(arc) {
			return true
		}
	}
	return false
}

// arcsContain reports whether any of the arcs contains p — the
// receiver-side test of a SyncVersions.Coverage snapshot.
func arcsContain(arcs []node.Arc, p node.Point) bool {
	for _, a := range arcs {
		if a.Contains(p) {
			return true
		}
	}
	return false
}

// Keep is the effective sieve decision: base sieve or adopted arcs.
func (m *Manager) Keep(t *tuple.Tuple) bool {
	if m.base.Keep(t) {
		return true
	}
	p := t.Point()
	for _, a := range m.adopted {
		if a.Contains(p) {
			return true
		}
	}
	return false
}

// AdoptedCount returns the number of currently adopted arcs.
func (m *Manager) AdoptedCount() int { return len(m.adopted) }

// Start implements sim.Machine. A rebooted node re-checks its ranges
// promptly (cursor reset) but keeps adopted arcs — they are part of its
// durable responsibility.
func (m *Manager) Start(now sim.Round) []sim.Envelope {
	m.pending = nil
	// A (re)joined node cannot assume the cluster is converged around
	// it: restart the supersession sweep at full cadence.
	m.supersedeGap = m.cfg.SupersedeEvery
	m.supersedeNext = now
	m.diverged = false
	m.now = now
	return nil
}

// Tick implements sim.Machine.
// Tick drives the periodic machinery. Steady-state allocation audit: on
// rounds with no pending harvests, no hot arcs and no periodic sweep due,
// every sub-path returns nil and out never allocates — the common round
// costs zero allocations. The periodic paths allocate only genuine
// message payloads (digest vectors, tuple batches), whose size varies
// with store content and cannot come from a fixed pool.
func (m *Manager) Tick(now sim.Round) []sim.Envelope {
	m.now = now
	var out []sim.Envelope
	out = append(out, m.harvest(now)...)
	out = append(out, m.harvestOrphans(now)...)
	if m.cfg.SegBits > 0 && now%sim.Round(m.cfg.HotSyncEvery) == 0 {
		out = append(out, m.syncHot()...)
		out = append(out, m.checkQueued(now)...)
	}
	if m.cfg.SupersedeEvery > 0 && now >= m.supersedeNext {
		out = append(out, m.sweepBystanders()...)
		m.Sweeps.Inc()
		if m.diverged {
			m.supersedeGap = m.cfg.SupersedeEvery
			m.diverged = false
		} else {
			m.supersedeGap = min(m.supersedeGap*2, m.cfg.SupersedeMaxEvery)
		}
		m.supersedeNext = now + sim.Round(m.supersedeGap)
	}
	if now%sim.Round(m.cfg.CheckEvery) != 0 {
		return out
	}
	out = append(out, m.sweepOrphans(now)...)
	arcs := m.Arcs()
	if len(arcs) == 0 {
		return out
	}
	m.arcCursor = (m.arcCursor + 1) % len(arcs)
	arc := arcs[m.arcCursor]
	if arc.Width == 0 {
		return out
	}
	setID, envs := m.walker.Launch(randomwalk.Query{Point: m.probePoint(arc)}, m.cfg.Walks, m.cfg.TTL)
	m.pending = append(m.pending, pendingCheck{arc: arc, setID: setID, launchedAt: now})
	m.Checks++
	out = append(out, envs...)
	return out
}

// probePoint picks the walk-probe position for an arc check: one walk
// set answers for every tuple in the range at once (the paper's cost
// reduction). The legacy scheduler always probes the midpoint; with
// SegBits > 0 the probe walks a low-discrepancy (Weyl) sequence across
// the arc, because peer arcs overlap this one only partially — a fixed
// probe point discovers the same holder subset forever, and a peer
// whose overlap is a narrow sliver would never be paired with, leaving
// the keys it alone knows the latest version of stale indefinitely.
func (m *Manager) probePoint(arc node.Arc) node.Point {
	if m.cfg.SegBits <= 0 {
		return arc.Start + node.Point(arc.Width/2)
	}
	m.probeSpin++
	// Golden-ratio multiplicative recurrence: successive probes are
	// maximally spread and eventually sample every overlap sliver.
	offset := (m.probeSpin * 0x9e3779b97f4a7c15) % arc.Width
	return arc.Start + node.Point(offset)
}

// syncMsg builds one range-sync opener toward a peer: the segmented
// digest vector when enabled and the arc is wide enough to split, the
// legacy whole-arc digest otherwise.
func (m *Manager) syncMsg(arc node.Arc) any {
	nseg := 1 << m.cfg.SegBits
	if m.cfg.SegBits <= 0 || arc.Width < uint64(nseg) {
		return SyncReq{Arc: arc, Digest: m.st.DigestArc(arc)}
	}
	digests, _ := m.st.SegmentDigests(arc, nseg)
	m.Segments.Add(int64(nseg))
	return SegSyncReq{Arc: arc, Digests: digests}
}

// syncHot is the staleness-priority scheduler: re-sync arcs with an
// outstanding mismatch against the peer the mismatch was observed with,
// instead of waiting for their round-robin CheckEvery turn. Arcs are
// visited in ring order for determinism; entries retire after HotRetire
// attempts without a clean confirmation.
func (m *Manager) syncHot() []sim.Envelope {
	if len(m.hot) == 0 {
		return nil
	}
	arcs := make([]node.Arc, 0, len(m.hot))
	for a := range m.hot {
		arcs = append(arcs, a)
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].Start != arcs[j].Start {
			return arcs[i].Start < arcs[j].Start
		}
		return arcs[i].Width < arcs[j].Width
	})
	var out []sim.Envelope
	sent := 0
	for _, a := range arcs {
		h := m.hot[a]
		if h.tries >= m.cfg.HotRetire {
			delete(m.hot, a)
			continue
		}
		if sent >= m.cfg.HotBatch {
			break
		}
		h.tries++
		m.Syncs++
		out = append(out, sim.Envelope{To: h.peer, Msg: m.syncMsg(a)})
		sent++
	}
	return out
}

// noteBehind schedules a priority walk-check of the responsibility arc
// containing p: the node just learned it was behind for the point (a
// peer pushed a tuple it lacked, or hinted a version it could not
// confirm), so the latest content for the range should be hunted down
// now, not at the arc's round-robin turn. Only active with SegBits > 0.
func (m *Manager) noteBehind(p node.Point) {
	if m.cfg.SegBits <= 0 || len(m.checkQueue) >= 16 {
		return
	}
	// Per-tuple path: walk base and adopted arcs in place (like Covers)
	// rather than materialising Arcs() per pushed tuple.
	for _, a := range m.base.Arcs() {
		if a.Contains(p) {
			m.queueCheck(a)
			return
		}
	}
	for _, a := range m.adopted {
		if a.Contains(p) {
			m.queueCheck(a)
			return
		}
	}
}

// noteDivergence records evidence that the cluster is not converged
// around this node — a copy was retired or refreshed, a peer turned out
// to be behind, or a version this node lacked arrived. It snaps the
// supersession sweep back to full cadence: the next sweep fires within
// SupersedeEvery rounds and the backoff restarts from there.
func (m *Manager) noteDivergence() {
	if m.cfg.SupersedeEvery == 0 {
		return
	}
	m.diverged = true
	if next := m.now + sim.Round(m.cfg.SupersedeEvery); next < m.supersedeNext {
		m.supersedeNext = next
	}
}

// NoteDivergence is the cross-layer divergence signal: the epidemic
// layer calls it when a gossiped write lands a version this node lacked
// — fresh writes mint fresh last-resort copies, so the supersession
// sweep must not idle through an active workload.
func (m *Manager) NoteDivergence() { m.noteDivergence() }

// queueCheck enqueues an arc for a priority walk-check, once.
func (m *Manager) queueCheck(a node.Arc) {
	if !m.queued[a] {
		m.queued[a] = true
		m.checkQueue = append(m.checkQueue, a)
	}
}

// checkQueued launches the walk probe for one queued arc — the same
// check the round-robin scheduler performs, just ahead of its turn.
func (m *Manager) checkQueued(now sim.Round) []sim.Envelope {
	if len(m.checkQueue) == 0 {
		return nil
	}
	arc := m.checkQueue[0]
	m.checkQueue = m.checkQueue[1:]
	delete(m.queued, arc)
	if arc.Width == 0 {
		return nil
	}
	setID, envs := m.walker.Launch(randomwalk.Query{Point: m.probePoint(arc)}, m.cfg.Walks, m.cfg.TTL)
	m.pending = append(m.pending, pendingCheck{arc: arc, setID: setID, launchedAt: now})
	m.Checks++
	return envs
}

// markHot records a digest mismatch for the arc against peer, scheduling
// it for priority re-sync. A repeated mismatch refreshes the entry (the
// retire clock restarts); a full schedule drops new entries — the
// round-robin checks still cover every arc eventually.
func (m *Manager) markHot(arc node.Arc, peer node.ID) {
	if h, ok := m.hot[arc]; ok {
		h.peer = peer
		h.tries = 0
		return
	}
	if len(m.hot) >= 64 {
		return
	}
	m.hot[arc] = &hotArc{peer: peer}
}

// sweepBystanders scans a window of the store for copies outside the
// node's responsibility and hints their (key, version) pairs to one
// sampled peer — the retention-aware supersession path that bounds
// bystander accretion without the cost of a walk set per key.
//
// Every copy is hinted, not only bystanders: for a copy this node is
// responsible for, a fresher holder's Newer answer refreshes it in
// place — cheap version-level anti-entropy that reaches even keys whose
// arc sits in a rarely-checked adopted sliver. Only bystander copies
// are ever *dropped* (the receiver-side Covers guard enforces it).
func (m *Manager) sweepBystanders() []sim.Envelope {
	hints := make([]KeyVersion, 0, m.cfg.SupersedeBatch)
	visited := 0
	var last string
	// Borrowed walk: only the key (a value copy) and version leave the
	// callback.
	m.st.ScanRef(m.supersedeCursor, 0, func(t *tuple.Tuple) bool {
		visited++
		last = t.Key
		if visited > 256 || len(hints) >= m.cfg.SupersedeBatch {
			return false
		}
		hints = append(hints, KeyVersion{Key: t.Key, Version: t.Version})
		return true
	})
	if visited <= 256 && len(hints) < m.cfg.SupersedeBatch {
		m.supersedeCursor = "" // reached the end: wrap
	} else {
		m.supersedeCursor = last
	}
	if len(hints) == 0 {
		return nil
	}
	// Fan the batch out to a few peers (one shared boxed message): only
	// ~r/N of peers covers a given key, so a single target would leave
	// most sweeps unanswered.
	peers := m.sampler.Sample(m.cfg.SupersedePeers)
	if len(peers) == 0 {
		return nil
	}
	msg := any(SupersedeQuery{Hints: hints})
	out := make([]sim.Envelope, 0, len(peers))
	for _, p := range peers {
		if p == m.self {
			continue
		}
		out = append(out, sim.Envelope{To: p, Msg: msg})
	}
	return out
}

// sweepOrphans scans a window of the store for tuples outside the node's
// current responsibility and launches point walks to find who covers
// them now.
func (m *Manager) sweepOrphans(now sim.Round) []sim.Envelope {
	var out []sim.Envelope
	launched := 0
	visited := 0
	var last string
	// Borrowed walk: the sweep reads only t.Key (a value copy) and the
	// ring point; the walk query carries the key string, not the tuple.
	m.st.ScanRef(m.orphanCursor, 0, func(t *tuple.Tuple) bool {
		visited++
		last = t.Key
		if visited > 128 || launched >= m.cfg.OrphanBatch {
			return false
		}
		if m.Covers(t.Point()) {
			return true
		}
		if doneAt, ok := m.orphanDone[t.Key]; ok && now-doneAt < sim.Round(m.cfg.OrphanRecheck) {
			return true
		}
		setID, envs := m.walker.Launch(
			randomwalk.Query{Point: t.Point(), Key: t.Key}, m.cfg.Walks, m.cfg.TTL)
		m.pendingOrphans = append(m.pendingOrphans, pendingOrphan{
			key: t.Key, setID: setID, launchedAt: now,
		})
		m.orphanDone[t.Key] = now
		launched++
		out = append(out, envs...)
		return true
	})
	if visited <= 128 && launched < m.cfg.OrphanBatch {
		m.orphanCursor = "" // reached the end: wrap
	} else {
		m.orphanCursor = last
	}
	return out
}

// harvestOrphans resolves completed orphan walks: push the tuple to its
// current coverers, or recruit an adopter when nobody covers it.
func (m *Manager) harvestOrphans(now sim.Round) []sim.Envelope {
	var out []sim.Envelope
	remaining := m.pendingOrphans[:0]
	for _, po := range m.pendingOrphans {
		if now-po.launchedAt < sim.Round(m.cfg.WaitRounds) {
			remaining = append(remaining, po)
			continue
		}
		set, ok := m.walker.Results(po.setID)
		if !ok {
			continue
		}
		m.walker.Forget(po.setID)
		t, have := m.st.GetAny(po.key)
		if !have {
			continue
		}
		holders := set.Holders()
		pushed := 0
		for _, h := range holders {
			if h == m.self {
				continue
			}
			out = append(out, sim.Envelope{To: h, Msg: SyncPush{Tuples: []*tuple.Tuple{t}}})
			m.Handoffs++
			pushed++
			if pushed >= m.cfg.SyncPeers {
				break
			}
		}
		// The tuple is fully replicated at its proper owners: release the
		// last-resort copy so origin stores stay bounded. Convergent mode
		// (SupersedeEvery > 0) does NOT release here: walk samples only
		// prove the holders *cover* the point, not that they store this
		// key at this version, and the handoff pushes emitted above may
		// still be lost — dropping on that evidence could destroy the
		// only latest copy. The supersession exchange retires the copy
		// instead, once a keeper explicitly confirms an equal-or-newer
		// version (and its floor then keeps the retirement final).
		if m.cfg.SupersedeEvery == 0 && len(holders) >= m.cfg.Replication && !m.Covers(t.Point()) {
			m.st.Drop(po.key)
			delete(m.orphanDone, po.key)
		}
		if len(set.Samples) > 0 && len(holders) == 0 {
			// Nobody covers this point: a coverage gap. Recruit an
			// adopter with a pinpoint arc so the tuple keeps a
			// responsible owner.
			if peer := m.sampler.One(); peer != node.None && peer != m.self {
				out = append(out, sim.Envelope{To: peer, Msg: AdoptReq{
					Arc:    node.Arc{Start: t.Point(), Width: 1},
					Tuples: []*tuple.Tuple{t},
				}})
				m.Recruits++
			}
		}
	}
	m.pendingOrphans = remaining
	return out
}

// harvest judges walk sets whose wait window elapsed.
func (m *Manager) harvest(now sim.Round) []sim.Envelope {
	var out []sim.Envelope
	remaining := m.pending[:0]
	for _, pc := range m.pending {
		if now-pc.launchedAt < sim.Round(m.cfg.WaitRounds) {
			remaining = append(remaining, pc)
			continue
		}
		set, ok := m.walker.Results(pc.setID)
		if ok {
			out = append(out, m.judge(now, pc.arc, set)...)
			m.walker.Forget(pc.setID)
		}
	}
	m.pending = remaining
	return out
}

// judge applies the repair policy to one range's replica estimate.
func (m *Manager) judge(now sim.Round, arc node.Arc, set *randomwalk.Set) []sim.Envelope {
	var out []sim.Envelope
	nEst := 2.0
	if m.cfg.NEst != nil {
		if e := m.cfg.NEst(); e > 2 {
			nEst = e
		}
	}
	replicas := set.ReplicaEstimate(nEst)
	holders := set.Holders()
	// Always anti-entropy with a few holders: content convergence is
	// useful regardless of the replica count.
	for i, h := range holders {
		if i >= m.cfg.SyncPeers {
			break
		}
		if h == m.self {
			continue
		}
		out = append(out, sim.Envelope{To: h, Msg: m.syncMsg(arc)})
		m.Syncs++
	}
	target := float64(m.cfg.Replication)
	switch {
	case replicas >= target:
		delete(m.deficitSince, arc.Start)
		// Release adopted arcs once the range is comfortably covered.
		if replicas > target*1.5 {
			m.release(arc)
		}
	default:
		first, seen := m.deficitSince[arc.Start]
		if !seen {
			m.deficitSince[arc.Start] = now
			return out
		}
		if now-first < sim.Round(m.cfg.Grace) {
			return out // transient-churn allowance
		}
		// Persistent deficit: recruit a random peer to adopt the range.
		peer := m.sampler.One()
		if peer == node.None || peer == m.self {
			return out
		}
		out = append(out, sim.Envelope{To: peer, Msg: AdoptReq{
			Arc:    arc,
			Tuples: m.tuplesInArc(arc, m.cfg.MaxPush),
		}})
		m.Recruits++
		delete(m.deficitSince, arc.Start) // restart the grace clock
	}
	return out
}

// release drops an adopted arc matching start (base arcs are never
// released).
func (m *Manager) release(arc node.Arc) {
	for i, a := range m.adopted {
		if a.Start == arc.Start && a.Width == arc.Width {
			m.adopted = append(m.adopted[:i], m.adopted[i+1:]...)
			m.Abandoned++
			return
		}
	}
}

// Handle implements sim.Machine.
func (m *Manager) Handle(now sim.Round, from node.ID, msg any) []sim.Envelope {
	m.now = now
	switch msg := msg.(type) {
	case SyncReq:
		if m.st.DigestArc(msg.Arc) == msg.Digest {
			return nil // ranges identical
		}
		resp := SyncVersions{
			Arc:      msg.Arc,
			Versions: m.st.VersionsInArc(msg.Arc),
		}
		if m.cfg.SegBits > 0 {
			// Convergent mode reaches this path for arcs too narrow to
			// segment (pinpoint adoption slivers): report coverage so the
			// requester's push side is gated like a segmented leaf reply.
			// Legacy mode stays nil-Coverage — byte-identical behaviour.
			resp.Coverage = m.Arcs()
		}
		return []sim.Envelope{{To: from, Msg: resp}}
	case SyncVersions:
		return m.reconcile(from, msg)
	case SegSyncReq:
		return m.handleSegSync(from, msg)
	case SegSyncResp:
		// Clean confirmations clear the priority schedule. Dirty verdicts
		// do NOT mark arcs hot by themselves: hotness is driven by pulls
		// (evidence this node was behind, see reconcile) — a peer can stay
		// digest-dirty forever about content it refuses to hold, and that
		// must not re-trigger priority syncs.
		if m.cfg.SegBits > 0 && msg.Clean {
			delete(m.hot, msg.Arc)
		}
	case SupersedeQuery:
		return m.handleSupersedeQuery(from, msg)
	case SupersedeResp:
		return m.handleSupersedeResp(from, msg)
	case SyncPull:
		tuples := make([]*tuple.Tuple, 0, len(msg.Keys))
		for _, k := range msg.Keys {
			if t, ok := m.st.GetAny(k); ok {
				tuples = append(tuples, t)
			}
		}
		if len(tuples) == 0 {
			return nil
		}
		m.Pushed += int64(len(tuples))
		m.noteDivergence() // the peer is pulling content it lacked
		return []sim.Envelope{{To: from, Msg: SyncPush{Tuples: tuples}}}
	case SyncPush:
		var newer []*tuple.Tuple
		for _, t := range msg.Tuples {
			keep := m.Keep(t)
			if m.cfg.SegBits > 0 && !keep && m.st.Version(t.Key).IsZero() {
				// Convergent mode: refuse content that is neither ours to
				// keep nor already held. Arc syncs exchange the requester's
				// whole arc, which can exceed this node's overlapping
				// responsibility — applying the excess would mint fresh
				// bystander copies faster than supersession retires them.
				continue
			}
			if keep {
				// Responsibility trumps retirement: a keeper must accept
				// the very version it may once have discarded as a
				// redundant bystander copy, or the range could never
				// restore its replica count from the surviving copies.
				m.st.ClearFloor(t.Key)
			}
			if m.st.Apply(t) {
				// The peer knew a version we lacked: if the tuple is ours
				// to keep, the range deserves a priority re-check — the
				// push may itself be stale (e.g. a bystander restoring
				// redundancy), and only the co-keepers can confirm.
				if m.Covers(t.Point()) {
					m.noteBehind(t.Point())
				}
				m.noteDivergence()
				continue
			}
			// Rejected as stale: read-repair the sender so last-resort
			// copies converge to the latest version.
			if cur, ok := m.st.GetAny(t.Key); ok && t.Version.Less(cur.Version) {
				newer = append(newer, cur)
			}
		}
		if len(newer) > 0 {
			if len(newer) > m.cfg.MaxPush {
				newer = newer[:m.cfg.MaxPush]
			}
			m.Pushed += int64(len(newer))
			m.noteDivergence() // the sender pushed stale content
			return []sim.Envelope{{To: from, Msg: SyncPush{Tuples: newer}}}
		}
	case AdoptReq:
		m.adopt(msg)
	}
	return nil
}

// handleSegSync answers one level of the digest tree: compare the
// peer's segment vector against local state, answer mismatching
// segments with key-level versions (small segments) or a recursive
// SegSyncReq one level down, and confirm the overall outcome so the
// requester's priority scheduler can keep or clear the arc.
func (m *Manager) handleSegSync(from node.ID, msg SegSyncReq) []sim.Envelope {
	n := len(msg.Digests)
	if n == 0 {
		return nil
	}
	if msg.Arc.Width < uint64(n) {
		// Too narrow to segment (defensive: syncMsg never sends these):
		// fall back to whole-arc versions.
		return []sim.Envelope{
			{To: from, Msg: SyncVersions{
				Arc:      msg.Arc,
				Versions: m.st.VersionsInArc(msg.Arc),
				Coverage: m.Arcs(),
			}},
			{To: from, Msg: SegSyncResp{Arc: msg.Arc, Clean: false}},
		}
	}
	// The store's ring-bucket index serves the segment vector in
	// O(|arc| boundary entries + buckets); only *mismatching* segments
	// are then revisited — for leaf version maps or one-level-down
	// digest vectors over just that segment's sub-arc. Clean segments
	// (the common case between converged peers) cost no entry visits at
	// all, where the pre-index handler collected the arc's whole
	// population on every request.
	mine, counts := m.st.SegmentDigests(msg.Arc, n)
	var out []sim.Envelope
	clean := true
	var coverage []node.Arc // lazily built, shared across this reply's leaves
	for i := 0; i < n; i++ {
		if mine[i] == msg.Digests[i] {
			continue // segment identical: the recursion prunes it
		}
		sub := msg.Arc.SubArc(i, n)
		if counts[i] == 0 && !m.coversAnyOf(sub) {
			// Foreign segment: the requester holds content in a range this
			// node neither covers nor stores anything of. That difference
			// is not this node's debt — exchanging it would only mint
			// bystander copies — and it must not keep the verdict dirty,
			// or partially-overlapping peers re-sync forever.
			continue
		}
		clean = false
		if counts[i] <= m.cfg.SegLeafKeys || sub.Width < uint64(n) {
			versions := make(map[string]tuple.Version, counts[i])
			m.st.ArcRefs(sub, func(key string, _ node.Point, v tuple.Version) bool {
				versions[key] = v
				return true
			})
			if coverage == nil {
				coverage = m.Arcs()
			}
			out = append(out, sim.Envelope{To: from, Msg: SyncVersions{
				Arc:      sub,
				Versions: versions,
				Coverage: coverage,
			}})
			continue
		}
		subDigests, _ := m.st.SegmentDigests(sub, n)
		m.Segments.Add(int64(n))
		out = append(out, sim.Envelope{To: from, Msg: SegSyncReq{Arc: sub, Digests: subDigests}})
	}
	return append(out, sim.Envelope{To: from, Msg: SegSyncResp{Arc: msg.Arc, Clean: clean}})
}

// handleSupersedeQuery answers bystander hints. As a responsible keeper:
// Held when the local version supersedes the hint (the bystander may
// drop), Want when the bystander is ahead of — or unknown to — this
// keeper and should push its copy. As a mere fellow holder: ship a
// strictly newer version back (the stale bystander refreshes in place),
// or ask for the hinted one when behind — so copies converge to the
// latest version even before a hint reaches a keeper.
func (m *Manager) handleSupersedeQuery(from node.ID, msg SupersedeQuery) []sim.Envelope {
	var resp SupersedeResp
	for _, h := range msg.Hints {
		p := node.HashKey(h.Key)
		covers := m.Covers(p)
		v := m.st.Version(h.Key)
		switch {
		case covers && !v.IsZero() && !v.Less(h.Version):
			resp.Held = append(resp.Held, KeyVersion{Key: h.Key, Version: v})
			if h.Version.Less(v) {
				// The hinted copy is strictly stale: mismatch evidence.
				// An equal-version Held is the converged steady state and
				// must NOT reset the sweep backoff.
				m.noteDivergence()
			}
		case covers:
			// A bystander knows a version this keeper cannot confirm: ask
			// for the copy, and priority-check the range — the hinted
			// version may itself lag the newest keeper copy elsewhere.
			resp.Want = append(resp.Want, h.Key)
			m.noteBehind(p)
			m.noteDivergence()
		case v.IsZero():
			// Neither responsible nor holding: nothing useful to answer.
		case h.Version.Less(v):
			if t, ok := m.st.GetAny(h.Key); ok {
				resp.Newer = append(resp.Newer, t)
				m.noteDivergence()
			}
		case v.Less(h.Version):
			resp.Want = append(resp.Want, h.Key)
			m.noteDivergence()
		}
	}
	if len(resp.Held) == 0 && len(resp.Want) == 0 && len(resp.Newer) == 0 {
		return nil
	}
	m.Pushed += int64(len(resp.Newer))
	return []sim.Envelope{{To: from, Msg: resp}}
}

// handleSupersedeResp resolves a supersession exchange at the bystander:
// drop copies a responsible keeper holds at an equal-or-newer version,
// push the tuples a responsible keeper asked for. A key that vanished or
// moved into local responsibility since the hint is left alone, so a
// stale response can never drop data it should not — and a dropped key
// is simply absent here, so late responses cannot resurrect it.
func (m *Manager) handleSupersedeResp(from node.ID, msg SupersedeResp) []sim.Envelope {
	for _, h := range msg.Held {
		cur := m.st.Version(h.Key)
		if cur.IsZero() || m.Covers(node.HashKey(h.Key)) {
			continue
		}
		if h.Version.Less(cur) {
			continue // we advanced past the keeper since the hint: keep
		}
		// Require confirmations from two distinct keepers before
		// releasing the copy (one suffices at replication 1): a single
		// confirming keeper could crash before range sync spreads the
		// confirmed version, and this copy may be the only other one.
		if m.cfg.Replication > 1 {
			first, seen := m.confirms[h.Key]
			if !seen || first == from {
				if len(m.confirms) > 4096 {
					// Rare overflow of half-confirmed keys: reset and let
					// them re-confirm rather than grow without bound.
					m.confirms = make(map[string]node.ID)
				}
				m.confirms[h.Key] = from
				// A half-confirmed retirement is in flight: keep the sweep
				// at full cadence until the second keeper answers.
				m.noteDivergence()
				continue
			}
		}
		// Discard (not Drop): the keeper-confirmed version becomes a
		// supersession floor, so late or replayed traffic cannot
		// resurrect the retired copy at an old version.
		if m.st.Discard(h.Key, h.Version) {
			delete(m.orphanDone, h.Key)
			delete(m.confirms, h.Key)
			m.Superseded.Inc()
			m.noteDivergence()
		}
	}
	for _, t := range msg.Newer {
		// Refresh in place only: a key already dropped (or never held)
		// must not be resurrected by a late response.
		if !m.st.Version(t.Key).IsZero() && m.st.Apply(t) {
			m.noteDivergence()
		}
	}
	var push []*tuple.Tuple
	for _, k := range msg.Want {
		if t, ok := m.st.GetAny(k); ok {
			push = append(push, t)
		}
	}
	if len(push) == 0 {
		return nil
	}
	if len(push) > m.cfg.MaxPush {
		push = push[:m.cfg.MaxPush]
	}
	m.Pushed += int64(len(push))
	m.noteDivergence() // a keeper lacked copies we hold
	return []sim.Envelope{{To: from, Msg: SyncPush{Tuples: push}}}
}

// reconcile diffs the peer's versions against local state: pull what the
// peer has newer, push what we have newer. Local state comes from the
// reusable sorted verBuf (AppendVersionsInArc) rather than a fresh map
// per exchange; a non-nil msg.Coverage additionally gates the "peer
// lacks it" pushes on the peer actually covering the key — content only
// this side is responsible for stays home instead of being re-shipped
// (and refused) every pass.
func (m *Manager) reconcile(from node.ID, msg SyncVersions) []sim.Envelope {
	m.verBuf = m.st.AppendVersionsInArc(m.verBuf[:0], msg.Arc)
	mine := m.verBuf
	lookup := func(key string) (tuple.Version, bool) {
		i := sort.Search(len(mine), func(i int) bool { return mine[i].Key >= key })
		if i < len(mine) && mine[i].Key == key {
			return mine[i].Version, true
		}
		return tuple.Version{}, false
	}
	var pull []string
	var push []*tuple.Tuple
	for key, theirs := range msg.Versions {
		ours, ok := lookup(key)
		switch {
		case !ok || ours.Less(theirs):
			if m.cfg.SegBits > 0 && !ok && !m.Covers(node.HashKey(key)) {
				// Convergent mode: a key that is neither held nor covered
				// is not this node's debt — pulling it would mint a fresh
				// bystander copy.
				continue
			}
			pull = append(pull, key)
		case theirs.Less(ours):
			if t, found := m.st.GetAny(key); found {
				push = append(push, t)
			}
		}
	}
	if m.cfg.SegBits > 0 {
		// Pulls are the evidence this node is behind for the range: keep
		// it on the priority schedule until a sync round yields nothing to
		// pull. Digest dirtiness alone (the peer missing content of ours
		// it refuses to hold) does not warrant hammering.
		if len(pull) > 0 {
			m.markHot(msg.Arc, from)
		} else {
			delete(m.hot, msg.Arc)
		}
	}
	for i := range mine {
		kv := &mine[i]
		if _, ok := msg.Versions[kv.Key]; ok {
			continue
		}
		if msg.Coverage != nil && !arcsContain(msg.Coverage, kv.Point) {
			// Coverage-aware reply: the peer told us it is not responsible
			// for this point, and it holds no copy (the key is absent from
			// its versions) — it would refuse the push as a would-be
			// bystander copy. Boundary content only this side covers stops
			// crossing the wire every pass.
			m.CoverageSkips.Inc()
			continue
		}
		if t, found := m.st.GetAny(kv.Key); found {
			push = append(push, t)
		}
	}
	sort.Strings(pull)
	sort.Slice(push, func(i, j int) bool { return push[i].Key < push[j].Key })
	if len(push) > m.cfg.MaxPush {
		push = push[:m.cfg.MaxPush]
	}
	if len(pull) > m.cfg.MaxPush {
		pull = pull[:m.cfg.MaxPush]
	}
	var out []sim.Envelope
	if len(pull) > 0 {
		out = append(out, sim.Envelope{To: from, Msg: SyncPull{Keys: pull}})
	}
	if len(push) > 0 {
		m.Pushed += int64(len(push))
		out = append(out, sim.Envelope{To: from, Msg: SyncPush{Tuples: push}})
	}
	if len(out) > 0 {
		m.noteDivergence() // a range diff found version mismatches
	}
	return out
}

// adopt incorporates a recruited range: remember the arc, apply the data.
func (m *Manager) adopt(msg AdoptReq) {
	for _, a := range m.Arcs() {
		if a == msg.Arc {
			// Already responsible; just merge the data.
			for _, t := range msg.Tuples {
				m.st.ClearFloor(t.Key)
				m.st.Apply(t)
			}
			return
		}
	}
	m.adopted = append(m.adopted, msg.Arc)
	for _, t := range msg.Tuples {
		// Adoption makes this node responsible for the payload: lift any
		// supersession floors so retired versions are re-admissible.
		m.st.ClearFloor(t.Key)
		m.st.Apply(t)
	}
	m.Recruits++ // counted on both ends: recruit sent and accepted
}

// tuplesInArc snapshots up to max tuples of the arc for transfer.
func (m *Manager) tuplesInArc(arc node.Arc, max int) []*tuple.Tuple {
	keys := m.st.KeysInArc(arc)
	sort.Strings(keys)
	if len(keys) > max {
		keys = keys[:max]
	}
	out := make([]*tuple.Tuple, 0, len(keys))
	for _, k := range keys {
		if t, ok := m.st.GetAny(k); ok {
			out = append(out, t)
		}
	}
	return out
}
