package repair

import (
	"fmt"
	"math/rand"
	"testing"

	"datadroplets/internal/membership"
	"datadroplets/internal/node"
	"datadroplets/internal/randomwalk"
	"datadroplets/internal/sieve"
	"datadroplets/internal/sim"
	"datadroplets/internal/store"
	"datadroplets/internal/tuple"
)

// stubSieve is an ArcSieve with explicit arcs, letting tests craft exact
// responsibility layouts.
type stubSieve struct{ arcs []node.Arc }

func (s *stubSieve) Keep(t *tuple.Tuple) bool {
	p := t.Point()
	for _, a := range s.arcs {
		if a.Contains(p) {
			return true
		}
	}
	return false
}
func (s *stubSieve) Grain() float64 {
	var f float64
	for _, a := range s.arcs {
		f += a.Fraction()
	}
	return f
}
func (s *stubSieve) Arcs() []node.Arc { return s.arcs }

var _ sieve.ArcSieve = (*stubSieve)(nil)

// testNode composes walker + manager the way the epidemic node does.
type testNode struct {
	id     node.ID
	st     *store.Store
	walker *randomwalk.Walker
	mgr    *Manager
}

func (n *testNode) Start(now sim.Round) []sim.Envelope {
	out := n.walker.Start(now)
	return append(out, n.mgr.Start(now)...)
}

func (n *testNode) Tick(now sim.Round) []sim.Envelope {
	out := n.walker.Tick(now)
	return append(out, n.mgr.Tick(now)...)
}

func (n *testNode) Handle(now sim.Round, from node.ID, msg any) []sim.Envelope {
	switch msg.(type) {
	case *randomwalk.WalkMsg, randomwalk.WalkResult:
		return n.walker.Handle(now, from, msg)
	default:
		return n.mgr.Handle(now, from, msg)
	}
}

type cluster struct {
	net   *sim.Network
	nodes map[node.ID]*testNode
	ids   []node.ID
}

// newCluster builds n test nodes; arcsFor assigns each index its sieve
// arcs.
func newCluster(n int, seed int64, cfg Config, arcsFor func(i int) []node.Arc) *cluster {
	c := &cluster{
		net:   sim.New(sim.Config{Seed: seed}),
		nodes: make(map[node.ID]*testNode, n),
	}
	ids := make([]node.ID, n)
	for i := range ids {
		ids[i] = node.ID(i + 1)
	}
	c.ids = ids
	pop := func() []node.ID { return ids }
	for i := 0; i < n; i++ {
		arcs := arcsFor(i)
		c.net.Spawn(func(id node.ID, rng *rand.Rand) sim.Machine {
			tn := &testNode{id: id, st: store.New(rng)}
			base := &stubSieve{arcs: arcs}
			sampler := membership.NewUniformView(id, rng, pop)
			tn.walker = randomwalk.New(id, rng, sampler, func(q randomwalk.Query) (bool, bool) {
				covers := tn.mgr.Covers(q.Point)
				_, hasKey := tn.st.GetAny(q.Key)
				return covers, hasKey && q.Key != ""
			})
			tn.mgr = New(id, rng, base, tn.st, tn.walker, sampler, cfg)
			c.nodes[id] = tn
			return tn
		})
	}
	return c
}

func mk(key string, seq uint64, val string) *tuple.Tuple {
	return &tuple.Tuple{Key: key, Value: []byte(val), Version: tuple.Version{Seq: seq, Writer: 1}}
}

func TestReconcileComputesPullAndPush(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := store.New(rng)
	st.Apply(mk("only-mine", 1, "x"))
	st.Apply(mk("both-mine-newer", 5, "x"))
	st.Apply(mk("both-theirs-newer", 1, "x"))
	m := New(1, rng, &stubSieve{arcs: []node.Arc{node.FullArc()}}, st, nil, nil, Config{})
	msg := SyncVersions{
		Arc: node.FullArc(),
		Versions: map[string]tuple.Version{
			"both-mine-newer":   {Seq: 2, Writer: 1},
			"both-theirs-newer": {Seq: 9, Writer: 1},
			"only-theirs":       {Seq: 1, Writer: 1},
		},
	}
	envs := m.reconcile(2, msg)
	var pulls []string
	var pushes []string
	for _, e := range envs {
		switch mm := e.Msg.(type) {
		case SyncPull:
			pulls = mm.Keys
		case SyncPush:
			for _, tp := range mm.Tuples {
				pushes = append(pushes, tp.Key)
			}
		}
	}
	wantPull := map[string]bool{"both-theirs-newer": true, "only-theirs": true}
	if len(pulls) != 2 || !wantPull[pulls[0]] || !wantPull[pulls[1]] {
		t.Fatalf("pulls = %v", pulls)
	}
	wantPush := map[string]bool{"only-mine": true, "both-mine-newer": true}
	if len(pushes) != 2 || !wantPush[pushes[0]] || !wantPush[pushes[1]] {
		t.Fatalf("pushes = %v", pushes)
	}
}

func TestSyncConvergesTwoHolders(t *testing.T) {
	// Nodes 1 and 2 cover the same arc but hold different tuples; the
	// periodic checks must converge their contents.
	arc := node.Arc{Start: 0, Width: 1 << 62}
	cfg := Config{Replication: 2, NEst: func() float64 { return 10 },
		Walks: 60, TTL: 4, CheckEvery: 4, Grace: 1000}
	c := newCluster(10, 3, cfg, func(i int) []node.Arc {
		if i < 2 {
			return []node.Arc{arc}
		}
		return nil
	})
	// Distinct keys that hash into the arc.
	var inArc []string
	for i := 0; len(inArc) < 6; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			inArc = append(inArc, k)
		}
	}
	for i, k := range inArc {
		if i%2 == 0 {
			c.nodes[1].st.Apply(mk(k, 1, "from1"))
		} else {
			c.nodes[2].st.Apply(mk(k, 1, "from2"))
		}
	}
	c.net.Run(80)
	for _, k := range inArc {
		if _, ok := c.nodes[1].st.GetAny(k); !ok {
			t.Fatalf("node 1 missing %q after sync", k)
		}
		if _, ok := c.nodes[2].st.GetAny(k); !ok {
			t.Fatalf("node 2 missing %q after sync", k)
		}
	}
}

func TestSyncPropagatesNewerVersions(t *testing.T) {
	arc := node.Arc{Start: 0, Width: 1 << 62}
	cfg := Config{Replication: 2, NEst: func() float64 { return 8 },
		Walks: 60, TTL: 4, CheckEvery: 4, Grace: 1000}
	c := newCluster(8, 5, cfg, func(i int) []node.Arc {
		if i < 2 {
			return []node.Arc{arc}
		}
		return nil
	})
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			key = k
			break
		}
	}
	c.nodes[1].st.Apply(mk(key, 1, "old"))
	c.nodes[2].st.Apply(mk(key, 7, "new"))
	c.net.Run(80)
	got, ok := c.nodes[1].st.Get(key)
	if !ok || string(got.Value) != "new" {
		t.Fatalf("node 1 has %v, want the newer version", got)
	}
}

func TestRecruitmentRestoresReplication(t *testing.T) {
	// One arc covered by a single node in a 40-node system with r=3:
	// after the grace window, recruitment must raise coverage to >= 3.
	arc := node.Arc{Start: 1 << 61, Width: 1 << 61}
	cfg := Config{Replication: 3, NEst: func() float64 { return 40 },
		Walks: 200, TTL: 5, CheckEvery: 5, WaitRounds: 8, Grace: 10}
	c := newCluster(40, 7, cfg, func(i int) []node.Arc {
		if i == 0 {
			return []node.Arc{arc}
		}
		return nil
	})
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			key = k
			break
		}
	}
	c.nodes[1].st.Apply(mk(key, 1, "payload"))
	c.net.Run(200)
	probe := arc.Start + node.Point(arc.Width/2)
	covering := 0
	holding := 0
	for _, tn := range c.nodes {
		if tn.mgr.Covers(probe) {
			covering++
		}
		if _, ok := tn.st.GetAny(key); ok {
			holding++
		}
	}
	if covering < 3 {
		t.Fatalf("%d nodes cover the arc after repair, want >= 3", covering)
	}
	if holding < 2 {
		t.Fatalf("%d nodes hold the tuple after repair, want >= 2", holding)
	}
	if c.nodes[1].mgr.Recruits == 0 {
		t.Fatal("no recruitment happened")
	}
}

func TestGraceWindowSuppressesEarlyRecruitment(t *testing.T) {
	arc := node.Arc{Start: 0, Width: 1 << 61}
	cfg := Config{Replication: 5, NEst: func() float64 { return 20 },
		Walks: 100, TTL: 4, CheckEvery: 4, WaitRounds: 7, Grace: 1 << 20}
	c := newCluster(20, 9, cfg, func(i int) []node.Arc {
		if i == 0 {
			return []node.Arc{arc}
		}
		return nil
	})
	c.net.Run(60)
	if got := c.nodes[1].mgr.Recruits; got != 0 {
		t.Fatalf("recruited %d times inside grace window", got)
	}
}

func TestAdoptAppliesDataAndExtendsResponsibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := store.New(rng)
	m := New(1, rng, &stubSieve{}, st, nil, nil, Config{})
	arc := node.Arc{Start: 100, Width: 1000}
	tup := mk("adopt-key", 3, "v")
	m.Handle(0, 2, AdoptReq{Arc: arc, Tuples: []*tuple.Tuple{tup}})
	if !m.Covers(105) {
		t.Fatal("adopted arc not covered")
	}
	if m.AdoptedCount() != 1 {
		t.Fatalf("adopted = %d", m.AdoptedCount())
	}
	if _, ok := st.GetAny("adopt-key"); !ok {
		t.Fatal("adopted tuple not stored")
	}
	// Duplicate adoption of the same arc must not double-register.
	m.Handle(0, 2, AdoptReq{Arc: arc, Tuples: nil})
	if m.AdoptedCount() != 1 {
		t.Fatalf("adopted after dup = %d", m.AdoptedCount())
	}
}

func TestKeepCombinesBaseAndAdopted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := store.New(rng)
	// Base sieve covers nothing.
	m := New(1, rng, &stubSieve{}, st, nil, nil, Config{})
	tup := mk("some-key", 1, "v")
	if m.Keep(tup) {
		t.Fatal("empty responsibility kept a tuple")
	}
	m.Handle(0, 2, AdoptReq{Arc: node.Arc{Start: tup.Point(), Width: 10}, Tuples: nil})
	if !m.Keep(tup) {
		t.Fatal("adopted arc not consulted by Keep")
	}
}

func TestSyncReqEqualDigestIsSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	st := store.New(rng)
	st.Apply(mk("k", 1, "v"))
	m := New(1, rng, &stubSieve{arcs: []node.Arc{node.FullArc()}}, st, nil, nil, Config{})
	digest := st.DigestArc(node.FullArc())
	if envs := m.Handle(0, 2, SyncReq{Arc: node.FullArc(), Digest: digest}); envs != nil {
		t.Fatalf("equal digests produced traffic: %v", envs)
	}
	if envs := m.Handle(0, 2, SyncReq{Arc: node.FullArc(), Digest: digest + 1}); envs == nil {
		t.Fatal("differing digests produced no version exchange")
	}
}

func TestSegmentedSyncConvergesTwoHolders(t *testing.T) {
	// The segmented counterpart of TestSyncConvergesTwoHolders: with
	// SegBits on, the digest-tree handshake must converge divergent
	// holders and actually exchange sub-range digests.
	arc := node.Arc{Start: 0, Width: 1 << 62}
	cfg := Config{Replication: 2, NEst: func() float64 { return 10 },
		Walks: 60, TTL: 4, CheckEvery: 4, Grace: 1000, SegBits: 3}
	c := newCluster(10, 3, cfg, func(i int) []node.Arc {
		if i < 2 {
			return []node.Arc{arc}
		}
		return nil
	})
	var inArc []string
	for i := 0; len(inArc) < 6; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			inArc = append(inArc, k)
		}
	}
	for i, k := range inArc {
		if i%2 == 0 {
			c.nodes[1].st.Apply(mk(k, 1, "from1"))
		} else {
			c.nodes[2].st.Apply(mk(k, 1, "from2"))
		}
	}
	c.net.Run(80)
	for _, k := range inArc {
		if _, ok := c.nodes[1].st.GetAny(k); !ok {
			t.Fatalf("node 1 missing %q after segmented sync", k)
		}
		if _, ok := c.nodes[2].st.GetAny(k); !ok {
			t.Fatalf("node 2 missing %q after segmented sync", k)
		}
	}
	if c.nodes[1].mgr.Segments.Value()+c.nodes[2].mgr.Segments.Value() == 0 {
		t.Fatal("no sub-range digests were exchanged")
	}
}

func TestSegSyncForeignSegmentsAreClean(t *testing.T) {
	// A peer that neither covers nor stores anything of a requested range
	// must answer a clean verdict without exchanging versions: content it
	// refuses to hold is not its debt, and a dirty verdict would keep
	// partially-overlapping peers re-syncing forever.
	rng := rand.New(rand.NewSource(21))
	st := store.New(rng)
	m := New(1, rng, &stubSieve{}, st, nil, nil, Config{SegBits: 3})
	arc := node.Arc{Start: 0, Width: 1 << 40}
	digests := make([]uint64, 8)
	for i := range digests {
		digests[i] = uint64(i + 1) // requester has content everywhere
	}
	envs := m.Handle(0, 2, SegSyncReq{Arc: arc, Digests: digests})
	if len(envs) != 1 {
		t.Fatalf("got %d envelopes, want only the verdict: %v", len(envs), envs)
	}
	resp, ok := envs[0].Msg.(SegSyncResp)
	if !ok || !resp.Clean {
		t.Fatalf("verdict = %v, want clean SegSyncResp", envs[0].Msg)
	}
}

func TestSupersessionDropsConfirmedBystander(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	key := "sup-key"
	arc := node.Arc{Start: node.HashKey(key), Width: 1024}
	cfg := Config{SegBits: 3, SupersedeEvery: 4}

	keeperSt := store.New(rng)
	keeper := New(2, rng, &stubSieve{arcs: []node.Arc{arc}}, keeperSt, nil, nil, cfg)
	keeperSt.Apply(mk(key, 3, "latest"))

	bystSt := store.New(rng)
	byst := New(1, rng, &stubSieve{}, bystSt, nil, nil, cfg)
	bystSt.Apply(mk(key, 2, "stale"))

	// Keeper holds v3 >= hinted v2: answers Held.
	envs := keeper.Handle(0, 1, SupersedeQuery{Hints: []KeyVersion{{Key: key, Version: tuple.Version{Seq: 2, Writer: 1}}}})
	if len(envs) != 1 {
		t.Fatalf("keeper sent %d envelopes, want 1", len(envs))
	}
	resp, ok := envs[0].Msg.(SupersedeResp)
	if !ok || len(resp.Held) != 1 || resp.Held[0].Version.Seq != 3 {
		t.Fatalf("keeper answered %v, want Held at v3", envs[0].Msg)
	}
	// The bystander drops its copy and records the floor.
	byst.Handle(1, 2, resp)
	if _, held := bystSt.GetAny(key); held {
		t.Fatal("bystander copy survived a Held answer")
	}
	if byst.Superseded.Value() != 1 {
		t.Fatalf("Superseded = %d, want 1", byst.Superseded.Value())
	}
	// Neither a replayed push nor a late gossip redelivery resurrects it.
	byst.Handle(2, 3, SyncPush{Tuples: []*tuple.Tuple{mk(key, 2, "replay")}})
	if _, held := bystSt.GetAny(key); held {
		t.Fatal("replayed push resurrected a superseded copy")
	}
	if bystSt.Apply(mk(key, 3, "gossip-replay")) {
		t.Fatal("redelivery at the floor version resurrected a superseded copy")
	}
}

func TestSupersessionWantPullsBystanderCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	key := "want-key"
	arc := node.Arc{Start: node.HashKey(key), Width: 1024}
	cfg := Config{SegBits: 3, SupersedeEvery: 4}

	keeperSt := store.New(rng)
	keeper := New(2, rng, &stubSieve{arcs: []node.Arc{arc}}, keeperSt, nil, nil, cfg)
	keeperSt.Apply(mk(key, 1, "old"))

	bystSt := store.New(rng)
	byst := New(1, rng, &stubSieve{}, bystSt, nil, nil, cfg)
	bystSt.Apply(mk(key, 4, "newest"))

	envs := keeper.Handle(0, 1, SupersedeQuery{Hints: []KeyVersion{{Key: key, Version: tuple.Version{Seq: 4, Writer: 1}}}})
	resp := envs[0].Msg.(SupersedeResp)
	if len(resp.Want) != 1 || resp.Want[0] != key {
		t.Fatalf("keeper answered %v, want Want(%s)", resp, key)
	}
	// The behind keeper also schedules a priority re-check of the range.
	if len(keeper.checkQueue) != 1 {
		t.Fatalf("checkQueue = %v, want the containing arc queued", keeper.checkQueue)
	}
	// The bystander pushes its newer copy; the keeper applies it.
	push := byst.Handle(1, 2, resp)
	if len(push) != 1 {
		t.Fatalf("bystander sent %d envelopes, want 1 push", len(push))
	}
	keeper.Handle(2, 1, push[0].Msg)
	if got, ok := keeperSt.GetAny(key); !ok || got.Version.Seq != 4 {
		t.Fatalf("keeper has %v, want v4", got)
	}
}

func TestSupersessionNewerRefreshesFellowBystander(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	key := "fresh-key"
	cfg := Config{SegBits: 3, SupersedeEvery: 4}

	// Neither node covers the key: both are bystanders.
	aSt := store.New(rng)
	a := New(1, rng, &stubSieve{}, aSt, nil, nil, cfg)
	aSt.Apply(mk(key, 2, "stale"))

	bSt := store.New(rng)
	b := New(2, rng, &stubSieve{}, bSt, nil, nil, cfg)
	bSt.Apply(mk(key, 5, "latest"))

	envs := b.Handle(0, 1, SupersedeQuery{Hints: []KeyVersion{{Key: key, Version: tuple.Version{Seq: 2, Writer: 1}}}})
	resp := envs[0].Msg.(SupersedeResp)
	if len(resp.Newer) != 1 || resp.Newer[0].Version.Seq != 5 {
		t.Fatalf("fellow holder answered %v, want Newer at v5", resp)
	}
	a.Handle(1, 2, resp)
	if got, ok := aSt.GetAny(key); !ok || got.Version.Seq != 5 {
		t.Fatalf("bystander refreshed to %v, want v5", got)
	}
	// A refresh must never resurrect: drop the copy, replay the response.
	aSt.Discard(key, tuple.Version{Seq: 5, Writer: 1})
	a.Handle(2, 2, resp)
	if _, held := aSt.GetAny(key); held {
		t.Fatal("late Newer response resurrected a discarded copy")
	}
}

func TestHotSchedulerDrivenByPulls(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	st := store.New(rng)
	arc := node.Arc{Start: 0, Width: 1 << 62}
	m := New(1, rng, &stubSieve{arcs: []node.Arc{arc}}, st, nil, nil,
		Config{SegBits: 3, HotSyncEvery: 3})

	// A SyncVersions with something to pull marks the arc hot...
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			key = k
			break
		}
	}
	m.Handle(0, 2, SyncVersions{Arc: arc, Versions: map[string]tuple.Version{key: {Seq: 3, Writer: 1}}})
	if len(m.hot) != 1 {
		t.Fatalf("hot = %v, want the arc scheduled after a pull", m.hot)
	}
	// ...and the next HotSyncEvery tick re-syncs it with the peer.
	envs := m.Tick(3)
	found := false
	for _, e := range envs {
		if _, ok := e.Msg.(SegSyncReq); ok && e.To == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no priority SegSyncReq to the mismatch peer in %v", envs)
	}
	// A sync round with nothing to pull clears the schedule.
	st.Apply(mk(key, 3, "caught-up"))
	m.Handle(4, 2, SyncVersions{Arc: arc, Versions: map[string]tuple.Version{key: {Seq: 3, Writer: 1}}})
	if len(m.hot) != 0 {
		t.Fatalf("hot = %v, want cleared after an empty pull", m.hot)
	}
}

func TestOrphanDiscardExactlyOnceNoResurrection(t *testing.T) {
	// Satellite: an orphaned last-resort copy is handed off and released
	// exactly once, never resurrected by a later gossip hint. Node 1
	// holds a key outside its (empty) responsibility; nodes 2..4 cover
	// it. The orphan sweep discovers them and hands the copy off; the
	// release itself happens through the supersession exchange — only a
	// keeper explicitly confirming an equal-or-newer version retires the
	// copy (walk samples alone prove coverage, not possession) — and the
	// recorded floor keeps replayed traffic from bringing it back.
	arc := node.Arc{Start: 0, Width: 1 << 62}
	cfg := Config{Replication: 3, NEst: func() float64 { return 12 },
		Walks: 80, TTL: 4, CheckEvery: 4, WaitRounds: 7, Grace: 1000,
		SegBits: 3, SupersedeEvery: 2, OrphanBatch: 4}
	c := newCluster(12, 31, cfg, func(i int) []node.Arc {
		if i >= 1 && i <= 3 {
			return []node.Arc{arc}
		}
		return nil
	})
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			key = k
			break
		}
	}
	orphanTuple := mk(key, 2, "payload")
	c.nodes[1].st.Apply(orphanTuple) // node 1 covers nothing: a pure last-resort copy
	c.net.Run(120)
	// The copy moved to coverers and left the origin exactly once.
	holding := 0
	for id, tn := range c.nodes {
		if _, ok := tn.st.GetAny(key); ok {
			if id == 1 {
				t.Fatal("orphan copy still on the origin after handoff")
			}
			holding++
		}
	}
	if holding < cfg.Replication {
		t.Fatalf("%d nodes hold the tuple after handoff, want >= %d", holding, cfg.Replication)
	}
	// The copy reached the keepers through the supersession Want path
	// (hint → keeper asks → origin pushes) and/or the walk handoff, and
	// was released exactly once, on a keeper-confirmed Held answer.
	if c.nodes[1].mgr.Superseded.Value() != 1 {
		t.Fatalf("Superseded = %d, want exactly 1 keeper-confirmed release", c.nodes[1].mgr.Superseded.Value())
	}
	// A later gossip hint (redelivered push) must not resurrect it.
	c.nodes[1].mgr.Handle(c.net.Round(), 5, SyncPush{Tuples: []*tuple.Tuple{mk(key, 2, "replay")}})
	if _, ok := c.nodes[1].st.GetAny(key); ok {
		t.Fatal("late push resurrected the released orphan copy")
	}
	if !c.nodes[1].st.Apply(mk(key, 3, "genuinely-new")) {
		t.Fatal("a genuinely newer write was refused by the floor")
	}
}

func TestFloorLiftsWhenResponsibilityReturns(t *testing.T) {
	// A node that discarded a bystander copy under a supersession floor
	// must be able to re-accept that very version once it becomes
	// responsible for the key again — via adoption or a keeper push —
	// or the range could never restore its replica count from the
	// surviving copies.
	rng := rand.New(rand.NewSource(33))
	key := "floor-key"
	cfg := Config{SegBits: 3, SupersedeEvery: 4}

	st := store.New(rng)
	m := New(1, rng, &stubSieve{}, st, nil, nil, cfg)
	st.Apply(mk(key, 5, "v5"))
	st.Discard(key, tuple.Version{Seq: 5, Writer: 1})

	// While a bystander, the replay stays refused.
	m.Handle(0, 2, SyncPush{Tuples: []*tuple.Tuple{mk(key, 5, "replay")}})
	if _, held := st.GetAny(key); held {
		t.Fatal("bystander replay slipped past the floor")
	}
	// Adoption of an arc containing the key re-admits the same version.
	m.Handle(1, 2, AdoptReq{
		Arc:    node.Arc{Start: node.HashKey(key), Width: 10},
		Tuples: []*tuple.Tuple{mk(key, 5, "restored")},
	})
	if got, ok := st.GetAny(key); !ok || got.Version.Seq != 5 {
		t.Fatalf("adopted copy = %v, want v5 re-admitted past the floor", got)
	}

	// Same via a sync push to a node whose sieve grew over the key.
	st2 := store.New(rng)
	m2 := New(2, rng, &stubSieve{arcs: []node.Arc{{Start: node.HashKey(key), Width: 10}}}, st2, nil, nil, cfg)
	st2.Apply(mk(key, 5, "v5"))
	st2.Discard(key, tuple.Version{Seq: 5, Writer: 1})
	m2.Handle(2, 3, SyncPush{Tuples: []*tuple.Tuple{mk(key, 5, "restored")}})
	if got, ok := st2.GetAny(key); !ok || got.Version.Seq != 5 {
		t.Fatalf("keeper push = %v, want v5 re-admitted past the floor", got)
	}
}

func TestSupersessionNeedsTwoDistinctKeeperConfirmations(t *testing.T) {
	// At replication > 1 a bystander copy is only released after two
	// *different* keepers confirm an equal-or-newer version: a single
	// confirming keeper could crash before range sync spreads the
	// version, and this copy may be the only other one.
	rng := rand.New(rand.NewSource(35))
	key := "quorum-key"
	cfg := Config{Replication: 3, SegBits: 3, SupersedeEvery: 4}
	st := store.New(rng)
	m := New(1, rng, &stubSieve{}, st, nil, nil, cfg)
	st.Apply(mk(key, 2, "copy"))

	held := SupersedeResp{Held: []KeyVersion{{Key: key, Version: tuple.Version{Seq: 3, Writer: 1}}}}
	m.Handle(0, 2, held) // first keeper confirms
	if _, ok := st.GetAny(key); !ok {
		t.Fatal("copy released after a single confirmation")
	}
	m.Handle(1, 2, held) // same keeper again: still only one witness
	if _, ok := st.GetAny(key); !ok {
		t.Fatal("copy released on a repeated confirmation from the same keeper")
	}
	m.Handle(2, 3, held) // second, distinct keeper
	if _, ok := st.GetAny(key); ok {
		t.Fatal("copy survived two distinct keeper confirmations")
	}
	if m.Superseded.Value() != 1 {
		t.Fatalf("Superseded = %d, want 1", m.Superseded.Value())
	}
}

func TestSupersedeSweepBackoffSchedule(t *testing.T) {
	// With nothing diverging, consecutive sweeps double their gap from
	// SupersedeEvery up to SupersedeMaxEvery; a divergence signal pulls
	// the next sweep forward and restarts the ladder.
	rng := rand.New(rand.NewSource(9))
	st := store.New(rng)
	sampler := membership.NewUniformView(1, rng, func() []node.ID { return []node.ID{1, 2} })
	m := New(1, rng, &stubSieve{}, st, nil, sampler,
		Config{Replication: 3, SupersedeEvery: 2, SupersedeMaxEvery: 16})
	m.Start(0)
	var sweeps []sim.Round
	last := int64(0)
	for now := sim.Round(0); now < 64; now++ {
		m.Tick(now)
		if v := m.Sweeps.Value(); v != last {
			sweeps = append(sweeps, now)
			last = v
		}
	}
	want := []sim.Round{0, 4, 12, 28, 44, 60} // gaps 4,8,16,16,16 (doubling from 2, capped)
	if fmt.Sprint(sweeps) != fmt.Sprint(want) {
		t.Fatalf("sweep rounds = %v, want %v", sweeps, want)
	}
	// Divergence at round 63 (a push applies a version we lacked): the
	// next sweep fires within SupersedeEvery rounds, not at 60+16=76.
	m.Handle(63, 2, SyncPush{Tuples: []*tuple.Tuple{mk("fresh-key", 1, "v")}})
	if !m.diverged {
		t.Fatal("applied push did not flag divergence")
	}
	if m.supersedeNext != 65 {
		t.Fatalf("supersedeNext = %d after divergence at 63, want 65", m.supersedeNext)
	}
	for now := sim.Round(64); now < 70; now++ {
		m.Tick(now)
	}
	// Sweep fired at 65 with the gap reset: the following one is due two
	// rounds later (67), proving the ladder restarted from SupersedeEvery.
	if m.Sweeps.Value() != last+2 { // 65, 67; the next (gap 4 → 71) is pending
		t.Fatalf("Sweeps = %d after reset window, want %d", m.Sweeps.Value(), last+2)
	}
}

func TestSupersedeSweepDecaysOnConvergedCluster(t *testing.T) {
	// Four keepers of the full ring hold identical content: every hint
	// draws an equal-version Held answer, which is the converged steady
	// state and must NOT hold the sweep at full cadence. Over 300 rounds
	// a uniform SupersedeEvery=2 cadence would fire 150 sweeps per node;
	// the backoff ladder (2,4,...,128 capped) fires ~10.
	cfg := Config{Replication: 3, NEst: func() float64 { return 4 },
		Walks: 8, TTL: 3, CheckEvery: 10, Grace: 1000,
		SegBits: 3, SupersedeEvery: 2}
	full := []node.Arc{node.FullArc()}
	c := newCluster(4, 17, cfg, func(i int) []node.Arc { return full })
	for _, tn := range c.nodes {
		for i := 0; i < 12; i++ {
			tn.st.Apply(mk(fmt.Sprintf("conv-%d", i), 3, "settled"))
		}
	}
	c.net.Run(300)
	for id, tn := range c.nodes {
		if got := tn.mgr.Sweeps.Value(); got > 20 {
			t.Fatalf("node %d fired %d sweeps over 300 converged rounds, want backoff decay (<= 20)", id, got)
		}
		if got := tn.mgr.Sweeps.Value(); got < 3 {
			t.Fatalf("node %d fired only %d sweeps, backoff should not stall the sweep entirely", id, got)
		}
	}
}
