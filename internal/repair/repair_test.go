package repair

import (
	"fmt"
	"math/rand"
	"testing"

	"datadroplets/internal/membership"
	"datadroplets/internal/node"
	"datadroplets/internal/randomwalk"
	"datadroplets/internal/sieve"
	"datadroplets/internal/sim"
	"datadroplets/internal/store"
	"datadroplets/internal/tuple"
)

// stubSieve is an ArcSieve with explicit arcs, letting tests craft exact
// responsibility layouts.
type stubSieve struct{ arcs []node.Arc }

func (s *stubSieve) Keep(t *tuple.Tuple) bool {
	p := t.Point()
	for _, a := range s.arcs {
		if a.Contains(p) {
			return true
		}
	}
	return false
}
func (s *stubSieve) Grain() float64 {
	var f float64
	for _, a := range s.arcs {
		f += a.Fraction()
	}
	return f
}
func (s *stubSieve) Arcs() []node.Arc { return s.arcs }

var _ sieve.ArcSieve = (*stubSieve)(nil)

// testNode composes walker + manager the way the epidemic node does.
type testNode struct {
	id     node.ID
	st     *store.Store
	walker *randomwalk.Walker
	mgr    *Manager
}

func (n *testNode) Start(now sim.Round) []sim.Envelope {
	out := n.walker.Start(now)
	return append(out, n.mgr.Start(now)...)
}

func (n *testNode) Tick(now sim.Round) []sim.Envelope {
	out := n.walker.Tick(now)
	return append(out, n.mgr.Tick(now)...)
}

func (n *testNode) Handle(now sim.Round, from node.ID, msg any) []sim.Envelope {
	switch msg.(type) {
	case randomwalk.WalkMsg, randomwalk.WalkResult:
		return n.walker.Handle(now, from, msg)
	default:
		return n.mgr.Handle(now, from, msg)
	}
}

type cluster struct {
	net   *sim.Network
	nodes map[node.ID]*testNode
	ids   []node.ID
}

// newCluster builds n test nodes; arcsFor assigns each index its sieve
// arcs.
func newCluster(n int, seed int64, cfg Config, arcsFor func(i int) []node.Arc) *cluster {
	c := &cluster{
		net:   sim.New(sim.Config{Seed: seed}),
		nodes: make(map[node.ID]*testNode, n),
	}
	ids := make([]node.ID, n)
	for i := range ids {
		ids[i] = node.ID(i + 1)
	}
	c.ids = ids
	pop := func() []node.ID { return ids }
	for i := 0; i < n; i++ {
		arcs := arcsFor(i)
		c.net.Spawn(func(id node.ID, rng *rand.Rand) sim.Machine {
			tn := &testNode{id: id, st: store.New(rng)}
			base := &stubSieve{arcs: arcs}
			sampler := membership.NewUniformView(id, rng, pop)
			tn.walker = randomwalk.New(id, rng, sampler, func(q randomwalk.Query) (bool, bool) {
				covers := tn.mgr.Covers(q.Point)
				_, hasKey := tn.st.GetAny(q.Key)
				return covers, hasKey && q.Key != ""
			})
			tn.mgr = New(id, rng, base, tn.st, tn.walker, sampler, cfg)
			c.nodes[id] = tn
			return tn
		})
	}
	return c
}

func mk(key string, seq uint64, val string) *tuple.Tuple {
	return &tuple.Tuple{Key: key, Value: []byte(val), Version: tuple.Version{Seq: seq, Writer: 1}}
}

func TestReconcileComputesPullAndPush(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	st := store.New(rng)
	st.Apply(mk("only-mine", 1, "x"))
	st.Apply(mk("both-mine-newer", 5, "x"))
	st.Apply(mk("both-theirs-newer", 1, "x"))
	m := New(1, rng, &stubSieve{arcs: []node.Arc{node.FullArc()}}, st, nil, nil, Config{})
	msg := SyncVersions{
		Arc: node.FullArc(),
		Versions: map[string]tuple.Version{
			"both-mine-newer":   {Seq: 2, Writer: 1},
			"both-theirs-newer": {Seq: 9, Writer: 1},
			"only-theirs":       {Seq: 1, Writer: 1},
		},
	}
	envs := m.reconcile(2, msg)
	var pulls []string
	var pushes []string
	for _, e := range envs {
		switch mm := e.Msg.(type) {
		case SyncPull:
			pulls = mm.Keys
		case SyncPush:
			for _, tp := range mm.Tuples {
				pushes = append(pushes, tp.Key)
			}
		}
	}
	wantPull := map[string]bool{"both-theirs-newer": true, "only-theirs": true}
	if len(pulls) != 2 || !wantPull[pulls[0]] || !wantPull[pulls[1]] {
		t.Fatalf("pulls = %v", pulls)
	}
	wantPush := map[string]bool{"only-mine": true, "both-mine-newer": true}
	if len(pushes) != 2 || !wantPush[pushes[0]] || !wantPush[pushes[1]] {
		t.Fatalf("pushes = %v", pushes)
	}
}

func TestSyncConvergesTwoHolders(t *testing.T) {
	// Nodes 1 and 2 cover the same arc but hold different tuples; the
	// periodic checks must converge their contents.
	arc := node.Arc{Start: 0, Width: 1 << 62}
	cfg := Config{Replication: 2, NEst: func() float64 { return 10 },
		Walks: 60, TTL: 4, CheckEvery: 4, Grace: 1000}
	c := newCluster(10, 3, cfg, func(i int) []node.Arc {
		if i < 2 {
			return []node.Arc{arc}
		}
		return nil
	})
	// Distinct keys that hash into the arc.
	var inArc []string
	for i := 0; len(inArc) < 6; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			inArc = append(inArc, k)
		}
	}
	for i, k := range inArc {
		if i%2 == 0 {
			c.nodes[1].st.Apply(mk(k, 1, "from1"))
		} else {
			c.nodes[2].st.Apply(mk(k, 1, "from2"))
		}
	}
	c.net.Run(80)
	for _, k := range inArc {
		if _, ok := c.nodes[1].st.GetAny(k); !ok {
			t.Fatalf("node 1 missing %q after sync", k)
		}
		if _, ok := c.nodes[2].st.GetAny(k); !ok {
			t.Fatalf("node 2 missing %q after sync", k)
		}
	}
}

func TestSyncPropagatesNewerVersions(t *testing.T) {
	arc := node.Arc{Start: 0, Width: 1 << 62}
	cfg := Config{Replication: 2, NEst: func() float64 { return 8 },
		Walks: 60, TTL: 4, CheckEvery: 4, Grace: 1000}
	c := newCluster(8, 5, cfg, func(i int) []node.Arc {
		if i < 2 {
			return []node.Arc{arc}
		}
		return nil
	})
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			key = k
			break
		}
	}
	c.nodes[1].st.Apply(mk(key, 1, "old"))
	c.nodes[2].st.Apply(mk(key, 7, "new"))
	c.net.Run(80)
	got, ok := c.nodes[1].st.Get(key)
	if !ok || string(got.Value) != "new" {
		t.Fatalf("node 1 has %v, want the newer version", got)
	}
}

func TestRecruitmentRestoresReplication(t *testing.T) {
	// One arc covered by a single node in a 40-node system with r=3:
	// after the grace window, recruitment must raise coverage to >= 3.
	arc := node.Arc{Start: 1 << 61, Width: 1 << 61}
	cfg := Config{Replication: 3, NEst: func() float64 { return 40 },
		Walks: 200, TTL: 5, CheckEvery: 5, WaitRounds: 8, Grace: 10}
	c := newCluster(40, 7, cfg, func(i int) []node.Arc {
		if i == 0 {
			return []node.Arc{arc}
		}
		return nil
	})
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if arc.Contains(node.HashKey(k)) {
			key = k
			break
		}
	}
	c.nodes[1].st.Apply(mk(key, 1, "payload"))
	c.net.Run(200)
	probe := arc.Start + node.Point(arc.Width/2)
	covering := 0
	holding := 0
	for _, tn := range c.nodes {
		if tn.mgr.Covers(probe) {
			covering++
		}
		if _, ok := tn.st.GetAny(key); ok {
			holding++
		}
	}
	if covering < 3 {
		t.Fatalf("%d nodes cover the arc after repair, want >= 3", covering)
	}
	if holding < 2 {
		t.Fatalf("%d nodes hold the tuple after repair, want >= 2", holding)
	}
	if c.nodes[1].mgr.Recruits == 0 {
		t.Fatal("no recruitment happened")
	}
}

func TestGraceWindowSuppressesEarlyRecruitment(t *testing.T) {
	arc := node.Arc{Start: 0, Width: 1 << 61}
	cfg := Config{Replication: 5, NEst: func() float64 { return 20 },
		Walks: 100, TTL: 4, CheckEvery: 4, WaitRounds: 7, Grace: 1 << 20}
	c := newCluster(20, 9, cfg, func(i int) []node.Arc {
		if i == 0 {
			return []node.Arc{arc}
		}
		return nil
	})
	c.net.Run(60)
	if got := c.nodes[1].mgr.Recruits; got != 0 {
		t.Fatalf("recruited %d times inside grace window", got)
	}
}

func TestAdoptAppliesDataAndExtendsResponsibility(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st := store.New(rng)
	m := New(1, rng, &stubSieve{}, st, nil, nil, Config{})
	arc := node.Arc{Start: 100, Width: 1000}
	tup := mk("adopt-key", 3, "v")
	m.Handle(0, 2, AdoptReq{Arc: arc, Tuples: []*tuple.Tuple{tup}})
	if !m.Covers(105) {
		t.Fatal("adopted arc not covered")
	}
	if m.AdoptedCount() != 1 {
		t.Fatalf("adopted = %d", m.AdoptedCount())
	}
	if _, ok := st.GetAny("adopt-key"); !ok {
		t.Fatal("adopted tuple not stored")
	}
	// Duplicate adoption of the same arc must not double-register.
	m.Handle(0, 2, AdoptReq{Arc: arc, Tuples: nil})
	if m.AdoptedCount() != 1 {
		t.Fatalf("adopted after dup = %d", m.AdoptedCount())
	}
}

func TestKeepCombinesBaseAndAdopted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := store.New(rng)
	// Base sieve covers nothing.
	m := New(1, rng, &stubSieve{}, st, nil, nil, Config{})
	tup := mk("some-key", 1, "v")
	if m.Keep(tup) {
		t.Fatal("empty responsibility kept a tuple")
	}
	m.Handle(0, 2, AdoptReq{Arc: node.Arc{Start: tup.Point(), Width: 10}, Tuples: nil})
	if !m.Keep(tup) {
		t.Fatal("adopted arc not consulted by Keep")
	}
}

func TestSyncReqEqualDigestIsSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	st := store.New(rng)
	st.Apply(mk("k", 1, "v"))
	m := New(1, rng, &stubSieve{arcs: []node.Arc{node.FullArc()}}, st, nil, nil, Config{})
	digest := st.DigestArc(node.FullArc())
	if envs := m.Handle(0, 2, SyncReq{Arc: node.FullArc(), Digest: digest}); envs != nil {
		t.Fatalf("equal digests produced traffic: %v", envs)
	}
	if envs := m.Handle(0, 2, SyncReq{Arc: node.FullArc(), Digest: digest + 1}); envs == nil {
		t.Fatal("differing digests produced no version exchange")
	}
}
