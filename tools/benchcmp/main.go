// Command benchcmp compares a freshly measured ddbench JSON report
// against a committed baseline report and flags throughput regressions.
//
// It matches rows by (nodes, workers) and compares rounds_per_sec; rows
// without a counterpart in the baseline are skipped (the committed
// baseline usually mixes full-scale and CI-scale measurements — only
// the overlapping configurations are comparable). By default a
// regression prints a GitHub Actions warning annotation and the command
// still exits 0, because absolute throughput also moves with runner
// hardware; -strict turns regressions into a non-zero exit for local
// gating.
//
// Usage:
//
//	benchcmp -baseline BENCH_simscale.json -current simscale_ci.json -threshold 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// row is the subset of a ddbench simscale result row the comparison
// needs; unknown fields are ignored.
type row struct {
	Nodes        int     `json:"nodes"`
	Workers      int     `json:"workers"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

type report struct {
	Benchmark string `json:"benchmark"`
	Results   []row  `json:"results"`
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_simscale.json", "committed baseline report")
		currentPath  = flag.String("current", "simscale_ci.json", "freshly measured report")
		threshold    = flag.Float64("threshold", 20, "regression threshold in percent")
		strict       = flag.Bool("strict", false, "exit non-zero on regression instead of only warning")
	)
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	base := make(map[[2]int]row, len(baseline.Results))
	for _, r := range baseline.Results {
		base[[2]int{r.Nodes, r.Workers}] = r
	}

	compared, regressions := 0, 0
	for _, cur := range current.Results {
		ref, ok := base[[2]int{cur.Nodes, cur.Workers}]
		if !ok || ref.RoundsPerSec <= 0 {
			continue
		}
		compared++
		change := (cur.RoundsPerSec/ref.RoundsPerSec - 1) * 100
		status := "ok"
		if change <= -*threshold {
			status = "REGRESSION"
			regressions++
			// GitHub Actions annotation — visible on the run summary
			// without failing the job (unless -strict).
			fmt.Printf("::warning title=bench regression::simscale N=%d W=%d: %.2f rounds/sec vs baseline %.2f (%.1f%%)\n",
				cur.Nodes, cur.Workers, cur.RoundsPerSec, ref.RoundsPerSec, change)
		}
		fmt.Printf("N=%-6d W=%-2d %10.2f rounds/sec  baseline %10.2f  %+7.1f%%  %s\n",
			cur.Nodes, cur.Workers, cur.RoundsPerSec, ref.RoundsPerSec, change, status)
	}
	if compared == 0 {
		fmt.Printf("benchcmp: no overlapping (nodes, workers) rows between %s and %s — nothing compared\n",
			*currentPath, *baselinePath)
		return
	}
	fmt.Printf("benchcmp: %d row(s) compared, %d regression(s) beyond %.0f%%\n", compared, regressions, *threshold)
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}
