// Command benchcmp compares a freshly measured ddbench JSON report
// against a committed baseline report and flags regressions. It handles
// both report families, dispatching on the report's "benchmark" field:
//
//   - simscale: rows match by (nodes, workers); rounds_per_sec is
//     compared against the threshold (percent). When both reports carry
//     a repair_cost section, the digest-serve ns/op is compared at the
//     same threshold and the index-vs-full-scan speedup against an
//     absolute 10x floor.
//   - scenarios: rows match by (scenario, nodes, workers, converge);
//     availability_any (absolute drop > 0.02), stale_keeper_copies
//     (absolute rise > 0.02) and rounds_to_convergence (relative rise
//     beyond the threshold) are compared — the dependability envelope
//     rather than throughput.
//   - serve: rows match by conns; ops_per_sec is compared against the
//     threshold and the put/get p99.9 tails against double the threshold
//     (same-host reports only, like simscale). Dropped responses > 0 and
//     timeouts regressing from a zero baseline are regressions on any
//     host — the pipelined protocol's zero-loss contract is not
//     hardware-dependent, and the timeout warning carries the
//     per-op-kind (put/get) breakdown.
//
// Rows without a counterpart in the baseline are skipped (the committed
// baselines mix full-scale and CI-scale measurements — only the
// overlapping configurations are comparable). By default a regression
// prints a GitHub Actions warning annotation and the command still
// exits 0, because absolute numbers also move with runner hardware and
// convergence rounds are heavy-tailed; -strict turns regressions into a
// non-zero exit for local gating.
//
// Usage:
//
//	benchcmp -baseline BENCH_simscale.json -current simscale_ci.json -threshold 20
//	benchcmp -baseline BENCH_scenarios.json -current scenarios_ci.json -threshold 50
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// row is the union of the fields the two comparisons need; unknown
// fields are ignored, absent ones stay zero.
type row struct {
	Scenario     string  `json:"scenario"`
	Nodes        int     `json:"nodes"`
	Workers      int     `json:"workers"`
	Converge     bool    `json:"converge"`
	RoundsPerSec float64 `json:"rounds_per_sec"`

	AvailAny         float64 `json:"availability_any"`
	StaleKeepers     float64 `json:"stale_keeper_copies"`
	RoundsToConverge int     `json:"rounds_to_converge"`

	Conns     int     `json:"conns"`
	OpsPerSec float64 `json:"ops_per_sec"`
	Dropped   int64   `json:"dropped"`

	Timeouts    int64   `json:"timeouts"`
	PutTimeouts int64   `json:"put_timeouts"`
	GetTimeouts int64   `json:"get_timeouts"`
	PutP999Ms   float64 `json:"put_p999_ms"`
	GetP999Ms   float64 `json:"get_p999_ms"`
}

// repairCost is the repair_cost section of a simscale (or standalone
// repaircost) report: the million-key digest-serving measurement.
type repairCost struct {
	Keys                     int     `json:"keys"`
	DigestArcNsPerOp         float64 `json:"digest_arc_ns_per_op"`
	DigestArcFullScanNsPerOp float64 `json:"digest_arc_full_scan_ns_per_op"`
	DigestSpeedupX           float64 `json:"digest_speedup_x"`
	EntriesScannedPerServe   float64 `json:"entries_scanned_per_serve"`
}

type report struct {
	Benchmark string `json:"benchmark"`
	// CPUs/GOMAXPROCS identify the measuring host's parallel capacity.
	// Reports written before these fields existed decode them as zero,
	// which the cross-host check treats as "unknown" (no refusal).
	CPUs       int         `json:"cpus"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	RepairCost *repairCost `json:"repair_cost"`
	Results    []row       `json:"results"`
}

// scenarioKey identifies one scenario measurement configuration.
type scenarioKey struct {
	scenario string
	nodes    int
	workers  int
	converge bool
}

func load(path string) (*report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_simscale.json", "committed baseline report")
		currentPath  = flag.String("current", "simscale_ci.json", "freshly measured report")
		threshold    = flag.Float64("threshold", 20, "regression threshold in percent")
		strict       = flag.Bool("strict", false, "exit non-zero on regression instead of only warning")
	)
	flag.Parse()

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	if baseline.Benchmark != current.Benchmark {
		fmt.Fprintf(os.Stderr, "benchcmp: report kinds differ: %q vs %q\n", baseline.Benchmark, current.Benchmark)
		os.Exit(2)
	}

	// sameHost gates wall-clock comparisons (ops/sec, rounds/sec): a
	// number measured on one core and one measured on four differ for
	// hardware reasons, not code reasons. Zero CPUs means "unknown"
	// (pre-field reports) and does not refuse.
	sameHost := !(baseline.CPUs > 0 && current.CPUs > 0 &&
		(baseline.CPUs != current.CPUs || baseline.GOMAXPROCS != current.GOMAXPROCS))

	var compared, regressions int
	switch current.Benchmark {
	case "scenarios":
		compared, regressions = compareScenarios(baseline, current, *threshold)
	case "serve":
		if !sameHost {
			fmt.Printf("::warning title=cross-host bench::refusing ops/sec comparison: baseline host cpus=%d gomaxprocs=%d, current host cpus=%d gomaxprocs=%d\n",
				baseline.CPUs, baseline.GOMAXPROCS, current.CPUs, current.GOMAXPROCS)
		}
		compared, regressions = compareServe(baseline, current, *threshold, sameHost)
	default:
		// Refuse the wall-clock diff entirely for cross-host simscale
		// reports instead of annotating phantom regressions or
		// improvements. Scenario metrics (availability, staleness,
		// convergence rounds) are round-counted, not wall-clocked, so
		// they stay comparable across hosts.
		if !sameHost {
			fmt.Printf("::warning title=cross-host bench::refusing rounds/sec comparison: baseline host cpus=%d gomaxprocs=%d, current host cpus=%d gomaxprocs=%d\n",
				baseline.CPUs, baseline.GOMAXPROCS, current.CPUs, current.GOMAXPROCS)
			fmt.Println("benchcmp: cross-host simscale reports — rounds/sec not compared (re-measure the baseline on this host to compare)")
			return
		}
		compared, regressions = compareSimScale(baseline, current, *threshold)
		rcC, rcR := compareRepairCost(baseline, current, *threshold)
		compared += rcC
		regressions += rcR
	}
	if compared == 0 {
		fmt.Printf("benchcmp: no overlapping rows between %s and %s — nothing compared\n",
			*currentPath, *baselinePath)
		return
	}
	fmt.Printf("benchcmp: %d row(s) compared, %d regression(s) beyond the thresholds\n", compared, regressions)
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}

func compareSimScale(baseline, current *report, threshold float64) (compared, regressions int) {
	base := make(map[[2]int]row, len(baseline.Results))
	for _, r := range baseline.Results {
		base[[2]int{r.Nodes, r.Workers}] = r
	}
	for _, cur := range current.Results {
		ref, ok := base[[2]int{cur.Nodes, cur.Workers}]
		if !ok || ref.RoundsPerSec <= 0 {
			continue
		}
		compared++
		change := (cur.RoundsPerSec/ref.RoundsPerSec - 1) * 100
		status := "ok"
		if change <= -threshold {
			status = "REGRESSION"
			regressions++
			// GitHub Actions annotation — visible on the run summary
			// without failing the job (unless -strict).
			fmt.Printf("::warning title=bench regression::simscale N=%d W=%d: %.2f rounds/sec vs baseline %.2f (%.1f%%)\n",
				cur.Nodes, cur.Workers, cur.RoundsPerSec, ref.RoundsPerSec, change)
		}
		fmt.Printf("N=%-6d W=%-2d %10.2f rounds/sec  baseline %10.2f  %+7.1f%%  %s\n",
			cur.Nodes, cur.Workers, cur.RoundsPerSec, ref.RoundsPerSec, change, status)
	}
	return compared, regressions
}

// compareRepairCost diffs the repair_cost sections when both reports
// carry one (reports predate the section → skipped, like unmatched
// rows). Two checks: the digest-serve ns/op against the baseline at the
// relative threshold — only reached on same-host reports, the caller's
// cross-host refusal already covers wall-clock numbers — and the
// measured index-vs-full-scan speedup against an absolute floor of 10x,
// the bar the incremental index is accountable to regardless of host.
func compareRepairCost(baseline, current *report, threshold float64) (compared, regressions int) {
	ref, cur := baseline.RepairCost, current.RepairCost
	if ref == nil || cur == nil || ref.DigestArcNsPerOp <= 0 {
		return 0, 0
	}
	compared++
	change := (cur.DigestArcNsPerOp/ref.DigestArcNsPerOp - 1) * 100
	status := "ok"
	if change >= threshold {
		status = "REGRESSION"
		regressions++
		fmt.Printf("::warning title=bench regression::repair_cost: DigestArc %.0f ns/op vs baseline %.0f (%+.1f%%)\n",
			cur.DigestArcNsPerOp, ref.DigestArcNsPerOp, change)
	}
	if cur.DigestSpeedupX < 10 {
		status = "REGRESSION"
		regressions++
		fmt.Printf("::warning title=bench regression::repair_cost: digest serve speedup %.1fx over full scan, floor is 10x\n",
			cur.DigestSpeedupX)
	}
	fmt.Printf("repair_cost    keys=%d DigestArc %.0f ns/op  baseline %.0f  %+7.1f%%  speedup %.0fx  scanned/serve %.0f  %s\n",
		cur.Keys, cur.DigestArcNsPerOp, ref.DigestArcNsPerOp, change,
		cur.DigestSpeedupX, cur.EntriesScannedPerServe, status)
	return compared, regressions
}

// compareServe diffs serve rows by connection count. ops/sec and the
// tail latencies (p99.9) are only compared between same-host reports;
// the dropped-responses check and the per-op-kind timeout comparison
// are count-based and apply on any host.
func compareServe(baseline, current *report, threshold float64, compareSpeed bool) (compared, regressions int) {
	base := make(map[int]row, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Conns] = r
	}
	for _, cur := range current.Results {
		ref, ok := base[cur.Conns]
		if !ok {
			continue
		}
		compared++
		status := "ok"
		if cur.Dropped > 0 {
			status = "REGRESSION"
			regressions++
			fmt.Printf("::warning title=bench regression::serve conns=%d: %d dropped responses (zero-loss contract)\n",
				cur.Conns, cur.Dropped)
		}
		// Timeouts regressing from zero is a correctness-adjacent signal
		// on any host: the baseline answered every op within the deadline
		// at this concurrency. The per-kind split names the failing path.
		if cur.Timeouts > 0 && ref.Timeouts == 0 {
			status = "REGRESSION"
			regressions++
			fmt.Printf("::warning title=bench regression::serve conns=%d: %d timeouts (put=%d get=%d) vs baseline 0\n",
				cur.Conns, cur.Timeouts, cur.PutTimeouts, cur.GetTimeouts)
		}
		change := 0.0
		if compareSpeed && ref.OpsPerSec > 0 {
			change = (cur.OpsPerSec/ref.OpsPerSec - 1) * 100
			if change <= -threshold {
				status = "REGRESSION"
				regressions++
				fmt.Printf("::warning title=bench regression::serve conns=%d: %.0f ops/sec vs baseline %.0f (%.1f%%)\n",
					cur.Conns, cur.OpsPerSec, ref.OpsPerSec, change)
			}
		}
		if compareSpeed {
			// Tail latency gets double the throughput threshold: p99.9 is
			// a handful of samples per trial and noisier than the mean.
			for _, tail := range []struct {
				name      string
				cur, refV float64
			}{
				{"put p99.9", cur.PutP999Ms, ref.PutP999Ms},
				{"get p99.9", cur.GetP999Ms, ref.GetP999Ms},
			} {
				if tail.refV <= 0 {
					continue // baseline predates the field
				}
				tailChange := (tail.cur/tail.refV - 1) * 100
				if tailChange >= 2*threshold {
					status = "REGRESSION"
					regressions++
					fmt.Printf("::warning title=bench regression::serve conns=%d: %s %.2fms vs baseline %.2fms (%+.1f%%)\n",
						cur.Conns, tail.name, tail.cur, tail.refV, tailChange)
				}
			}
		}
		fmt.Printf("conns=%-6d %10.0f ops/sec  baseline %10.0f  %+7.1f%%  dropped %d  timeouts %d (put %d / get %d)  p999 put %.2fms get %.2fms  %s\n",
			cur.Conns, cur.OpsPerSec, ref.OpsPerSec, change, cur.Dropped,
			cur.Timeouts, cur.PutTimeouts, cur.GetTimeouts, cur.PutP999Ms, cur.GetP999Ms, status)
	}
	return compared, regressions
}

func compareScenarios(baseline, current *report, threshold float64) (compared, regressions int) {
	base := make(map[scenarioKey]row, len(baseline.Results))
	for _, r := range baseline.Results {
		base[scenarioKey{r.Scenario, r.Nodes, r.Workers, r.Converge}] = r
	}
	for _, cur := range current.Results {
		ref, ok := base[scenarioKey{cur.Scenario, cur.Nodes, cur.Workers, cur.Converge}]
		if !ok {
			continue
		}
		compared++
		var bad []string
		if cur.AvailAny < ref.AvailAny-0.02 {
			bad = append(bad, fmt.Sprintf("availability %.3f vs %.3f", cur.AvailAny, ref.AvailAny))
		}
		if cur.StaleKeepers > ref.StaleKeepers+0.02 {
			bad = append(bad, fmt.Sprintf("stale keepers %.3f vs %.3f", cur.StaleKeepers, ref.StaleKeepers))
		}
		// -1 means "did not converge within the cap": a regression when
		// the baseline converged, never an improvement to regress from.
		switch {
		case cur.RoundsToConverge < 0 && ref.RoundsToConverge >= 0:
			bad = append(bad, fmt.Sprintf("no convergence (baseline %d rounds)", ref.RoundsToConverge))
		case cur.RoundsToConverge >= 0 && ref.RoundsToConverge > 0 &&
			float64(cur.RoundsToConverge) > float64(ref.RoundsToConverge)*(1+threshold/100):
			bad = append(bad, fmt.Sprintf("convergence %d vs %d rounds", cur.RoundsToConverge, ref.RoundsToConverge))
		}
		status := "ok"
		if len(bad) > 0 {
			status = "REGRESSION"
			regressions++
			for _, b := range bad {
				fmt.Printf("::warning title=scenario regression::%s N=%d W=%d converge=%v: %s\n",
					cur.Scenario, cur.Nodes, cur.Workers, cur.Converge, b)
			}
		}
		fmt.Printf("%-14s N=%-5d W=%-2d converge=%-5v avail %.3f/%.3f  staleKeep %.3f/%.3f  rounds %d/%d  %s\n",
			cur.Scenario, cur.Nodes, cur.Workers, cur.Converge,
			cur.AvailAny, ref.AvailAny, cur.StaleKeepers, ref.StaleKeepers,
			cur.RoundsToConverge, ref.RoundsToConverge, status)
	}
	return compared, regressions
}
