package datadroplets

import (
	"errors"
	"fmt"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	c := New(WithNodes(24), WithSoftNodes(2), WithReplication(3), WithSeed(1),
		WithFanoutC(3), WithAntiEntropy(5))
	defer c.Close()
	c.Advance(15)
	if err := c.Put("user:1", []byte("alice"), nil, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get("user:1")
	if err != nil || string(got.Value) != "alice" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if err := c.Delete("user:1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get("user:1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-delete err = %v", err)
	}
}

func TestFacadeFailureInjection(t *testing.T) {
	c := New(WithNodes(30), WithReplication(4), WithSeed(2), WithFanoutC(3))
	defer c.Close()
	c.Advance(15)
	if err := c.Put("k", []byte("v"), nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Advance(10)
	if c.Holders("k") == 0 {
		t.Fatal("no holders")
	}
	before := c.Nodes()
	c.KillNode(0, false)
	if c.Nodes() != before-1 {
		t.Fatal("kill had no effect")
	}
	c.ReviveNode(0)
	if c.Nodes() != before {
		t.Fatal("revive had no effect")
	}
}

func TestFacadeAggregates(t *testing.T) {
	c := New(WithNodes(30), WithReplication(3), WithSeed(3), WithFanoutC(3),
		WithAggregates("count"))
	defer c.Close()
	c.Advance(15)
	for i := 0; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("k-%d", i), []byte("v"), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Advance(40)
	agg, err := c.Aggregate("count")
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if agg.Sum < 10 || agg.Sum > 40 {
		t.Fatalf("count = %v, want ≈20", agg.Sum)
	}
	if agg.NEstimate < 15 || agg.NEstimate > 60 {
		t.Fatalf("NEstimate = %v, want ≈30", agg.NEstimate)
	}
}

func TestFacadeRecovery(t *testing.T) {
	c := New(WithNodes(24), WithReplication(3), WithSeed(4), WithFanoutC(3))
	defer c.Close()
	c.Advance(15)
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("k-%d", i), []byte("v"), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Advance(10)
	c.WipeSoftLayer()
	n, err := c.RecoverSoftLayer()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	if _, err := c.Get("k-5"); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}
