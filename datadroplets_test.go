package datadroplets

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"datadroplets/internal/workload"
)

func TestFacadeQuickstart(t *testing.T) {
	c := New(WithNodes(24), WithSoftNodes(2), WithReplication(3), WithSeed(1),
		WithFanoutC(3), WithAntiEntropy(5))
	defer c.Close()
	c.Advance(15)
	if err := c.Put("user:1", []byte("alice"), nil, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get("user:1")
	if err != nil || string(got.Value) != "alice" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if err := c.Delete("user:1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get("user:1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-delete err = %v", err)
	}
}

func TestFacadeFailureInjection(t *testing.T) {
	c := New(WithNodes(30), WithReplication(4), WithSeed(2), WithFanoutC(3))
	defer c.Close()
	c.Advance(15)
	if err := c.Put("k", []byte("v"), nil, nil); err != nil {
		t.Fatal(err)
	}
	c.Advance(10)
	if c.Holders("k") == 0 {
		t.Fatal("no holders")
	}
	before := c.Nodes()
	c.KillNode(0, false)
	if c.Nodes() != before-1 {
		t.Fatal("kill had no effect")
	}
	c.ReviveNode(0)
	if c.Nodes() != before {
		t.Fatal("revive had no effect")
	}
}

func TestFacadeAggregates(t *testing.T) {
	c := New(WithNodes(30), WithReplication(3), WithSeed(3), WithFanoutC(3),
		WithAggregates("count"))
	defer c.Close()
	c.Advance(15)
	for i := 0; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("k-%d", i), []byte("v"), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Advance(40)
	agg, err := c.Aggregate("count")
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if agg.Sum < 10 || agg.Sum > 40 {
		t.Fatalf("count = %v, want ≈20", agg.Sum)
	}
	if agg.NEstimate < 15 || agg.NEstimate > 60 {
		t.Fatalf("NEstimate = %v, want ≈30", agg.NEstimate)
	}
}

func TestFacadeAsyncBatch(t *testing.T) {
	c := New(WithNodes(24), WithSoftNodes(2), WithReplication(3), WithSeed(5), WithFanoutC(3))
	defer c.Close()
	c.Advance(15)
	puts := make([]PutOp, 16)
	for i := range puts {
		puts[i] = PutOp{Key: fmt.Sprintf("b-%d", i), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	for i, err := range c.BatchPut(puts) {
		if err != nil {
			t.Fatalf("batch put %d: %v", i, err)
		}
	}
	gets := make([]BatchOp, 16)
	for i := range gets {
		gets[i] = BatchOp{Kind: OpGet, Key: fmt.Sprintf("b-%d", i)}
	}
	for i, r := range c.Batch(gets) {
		if r.Err != nil || string(r.Tuple.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("batch get %d = %v, %v", i, r.Tuple, r.Err)
		}
	}
	// Raw handle flow: submit, wait, inspect.
	h := c.GetAsync("b-3")
	c.Wait()
	if !h.Done() || h.Err() != nil || string(h.Tuple().Value) != "v3" {
		t.Fatalf("async get = %v, %v", h.Tuple(), h.Err())
	}
	if c.InFlight() != 0 {
		t.Fatalf("in-flight = %d after Wait", c.InFlight())
	}
}

// asyncClient adapts the public facade to workload.AsyncClient without
// leaking the internal interface into the exported API.
type asyncClient struct{ c *Cluster }

func (a asyncClient) SubmitPut(key string, value []byte) workload.Waiter {
	return a.c.PutAsync(key, value, nil, nil)
}
func (a asyncClient) SubmitGet(key string) workload.Waiter { return a.c.GetAsync(key) }
func (a asyncClient) Step()                                { a.c.Step() }

// throughputCluster is the default 32-node deployment the throughput
// acceptance criterion is stated against.
func throughputCluster(seed int64) *Cluster {
	c := New(WithNodes(32), WithSoftNodes(4), WithReplication(3), WithFanoutC(3), WithSeed(seed))
	c.Advance(20)
	return c
}

// mixedLoop runs the canonical 512-op mixed workload at the given
// window and returns the loop stats.
func mixedLoop(c *Cluster, window int, rngSeed int64) workload.ClosedLoopResult {
	rng := rand.New(rand.NewSource(rngSeed))
	cl := workload.ClosedLoop{
		Window: window,
		Total:  512,
		Mix:    workload.Mix{ReadFraction: 0.5, Keys: workload.UniformKeys(256, rng)},
	}
	return cl.Run(asyncClient{c}, rng)
}

// TestThroughputPipelinedVsSerial enforces the PR's acceptance bar: a
// 512-op mixed workload at window=64 on the default 32-node cluster
// must finish in at most 1/5 the simulated rounds of the serial path,
// with byte-identical results for equal seeds.
func TestThroughputPipelinedVsSerial(t *testing.T) {
	serial := mixedLoop(throughputCluster(7), 1, 70)
	pipe := mixedLoop(throughputCluster(7), 64, 70)
	if serial.Ops != 512 || pipe.Ops != 512 {
		t.Fatalf("ops: serial %d, pipelined %d, want 512", serial.Ops, pipe.Ops)
	}
	if pipe.Rounds*5 > serial.Rounds {
		t.Fatalf("pipelined rounds = %d, serial = %d — want ≥5× fewer", pipe.Rounds, serial.Rounds)
	}

	// Byte-identical determinism: rerun the pipelined workload with the
	// same seeds and compare loop stats and every surviving value.
	readBack := func(c *Cluster) [][]byte {
		ops := make([]BatchOp, 256)
		for i := range ops {
			ops[i] = BatchOp{Kind: OpGet, Key: workload.Key(i)}
		}
		out := make([][]byte, len(ops))
		for i, r := range c.Batch(ops) {
			if r.Tuple != nil {
				out[i] = r.Tuple.Value
			}
		}
		return out
	}
	c1, c2 := throughputCluster(7), throughputCluster(7)
	r1, r2 := mixedLoop(c1, 64, 70), mixedLoop(c2, 64, 70)
	if r1 != r2 {
		t.Fatalf("same seed, different loop stats: %+v vs %+v", r1, r2)
	}
	v1, v2 := readBack(c1), readBack(c2)
	for i := range v1 {
		if !bytes.Equal(v1[i], v2[i]) {
			t.Fatalf("same seed, different value for key %d", i)
		}
	}
}

func TestFacadeRecovery(t *testing.T) {
	c := New(WithNodes(24), WithReplication(3), WithSeed(4), WithFanoutC(3))
	defer c.Close()
	c.Advance(15)
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("k-%d", i), []byte("v"), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	c.Advance(10)
	c.WipeSoftLayer()
	n, err := c.RecoverSoftLayer()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if n == 0 {
		t.Fatal("nothing recovered")
	}
	if _, err := c.Get("k-5"); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

func TestWithReadRepairClusterWorks(t *testing.T) {
	c := New(WithNodes(24), WithSeed(11), WithReplication(3), WithReadRepair())
	defer c.Close()
	c.Advance(20)
	if err := c.Put("rr:a", []byte("v"), nil, nil); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := c.Get("rr:a")
	if err != nil || string(got.Value) != "v" {
		t.Fatalf("Get = %v, %v", got, err)
	}
	// Same options, same seed: the deployment stays deterministic with
	// read-repair enabled.
	d := New(WithNodes(24), WithSeed(11), WithReplication(3), WithReadRepair())
	defer d.Close()
	d.Advance(20)
	if err := d.Put("rr:a", []byte("v"), nil, nil); err != nil {
		t.Fatalf("second cluster Put: %v", err)
	}
	if c.Round() != d.Round() {
		t.Fatalf("same-seed read-repair runs diverged: rounds %d vs %d", c.Round(), d.Round())
	}
}
