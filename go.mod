module datadroplets

go 1.24
