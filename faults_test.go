package datadroplets

import (
	"errors"
	"testing"
)

// TestFaultsPartitionCutsClientsThenHeals drives the canonical public
// fault demo: isolating the whole persistent layer from the soft
// (client) layer makes operations time out, and after the scheduled
// heal the previously written data is readable again — no restart, no
// manual repair.
func TestFaultsPartitionCutsClientsThenHeals(t *testing.T) {
	c := New(WithNodes(24), WithSoftNodes(2), WithReplication(3), WithSeed(11), WithFanoutC(3))
	defer c.Close()
	c.Advance(15)
	if err := c.Put("k", []byte("v"), nil, nil); err != nil {
		t.Fatalf("Put before fault: %v", err)
	}

	all := make([]int, 24)
	for i := range all {
		all[i] = i
	}
	const cut = 250
	c.Faults().Partition(0, cut, all)

	// The soft layer's tuple cache still answers reads for hot keys — a
	// partition-masking behaviour worth keeping — so wipe the soft state
	// to force the read across the (cut) network.
	c.WipeSoftLayer()
	if _, err := c.Get("k"); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Get during full persistent-layer partition: err = %v, want ErrTimeout", err)
	}
	if err := c.Put("k2", []byte("v2"), nil, nil); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Put during partition: err = %v, want ErrTimeout", err)
	}

	// Burn whatever remains of the fault window (the timed-out operations
	// above already advanced the fabric), then operate normally.
	c.Advance(cut)
	got, err := c.Get("k")
	if err != nil || string(got.Value) != "v" {
		t.Fatalf("Get after heal = %v, %v", got, err)
	}
	if err := c.Put("k2", []byte("v2"), nil, nil); err != nil {
		t.Fatalf("Put after heal: %v", err)
	}
}

// TestFaultsFlapAndMassCrashRestoreMembership checks the node-state
// fault family end to end through the public facade: a flap window and
// a 50% correlated crash both leave the cluster whole again after their
// schedules run out.
func TestFaultsFlapAndMassCrashRestoreMembership(t *testing.T) {
	c := New(WithNodes(20), WithReplication(3), WithSeed(12), WithFanoutC(3))
	defer c.Close()
	c.Advance(10)
	full := c.Nodes()

	c.Faults().Flap(0, 12, 4, 2, 0, 1, 2).MassCrash(20, 0.5, 8)

	sawFlapDown, sawCrashDown := false, false
	for i := 0; i < 40; i++ {
		c.Step()
		n := c.Nodes()
		if i < 14 && n <= full-3 {
			sawFlapDown = true
		}
		if i >= 20 && n <= full/2+1 {
			sawCrashDown = true
		}
	}
	if !sawFlapDown {
		t.Fatal("flap window never took the flapped nodes down")
	}
	if !sawCrashDown {
		t.Fatal("mass crash never took half the cluster down")
	}
	if c.Nodes() != full {
		t.Fatalf("alive = %d after all schedules closed, want %d", c.Nodes(), full)
	}
}

// TestFaultsDeterministicAcrossWorkers pins the public determinism
// promise: the same faulted workload produces identical results and
// round counts at every WithWorkers setting.
func TestFaultsDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) (string, int) {
		c := New(WithNodes(24), WithSoftNodes(2), WithReplication(3), WithSeed(13),
			WithFanoutC(3), WithWorkers(workers))
		defer c.Close()
		c.Advance(15)
		c.Faults().
			LatencySpike(5, 10, 1, 1).
			SlowNodes(0, 30, 2, 0.3, 3, 7).
			MassCrash(12, 0.25, 10)
		out := ""
		for i := 0; i < 12; i++ {
			key := "wk-" + string(rune('a'+i))
			if err := c.Put(key, []byte{byte(i)}, nil, nil); err != nil {
				out += "E"
			} else {
				out += "."
			}
		}
		c.Advance(30)
		for i := 0; i < 12; i++ {
			key := "wk-" + string(rune('a'+i))
			if tp, err := c.Get(key); err == nil && len(tp.Value) == 1 && tp.Value[0] == byte(i) {
				out += "r"
			} else {
				out += "x"
			}
		}
		return out, c.Round()
	}
	trace1, rounds1 := run(1)
	trace4, rounds4 := run(4)
	if trace1 != trace4 || rounds1 != rounds4 {
		t.Fatalf("faulted run diverged across workers:\n W=1: %s (%d rounds)\n W=4: %s (%d rounds)",
			trace1, rounds1, trace4, rounds4)
	}
}
