// Package datadroplets is an epidemic key-value substrate: a Go
// implementation of the DataDroplets architecture from "An epidemic
// approach to dependable key-value substrates" (Matos, Vilaça, Pereira,
// Oliveira — DSN 2011).
//
// The system has two layers. A small structured soft-state layer orders
// writes (per-key versions), caches tuples and keeps routing metadata in
// memory. The persistent layer is fully unstructured: writes spread by
// epidemic dissemination with fanout ln(N̂)+c, every node applies a local
// sieve to decide what it stores (target redundancy r), and redundancy
// is maintained probabilistically with random-walk range checks and
// direct peer synchronisation — no global membership, no master, no DHT
// in the data path.
//
// Quickstart:
//
//	c := datadroplets.New(datadroplets.WithNodes(32), datadroplets.WithReplication(3))
//	defer c.Close()
//	c.Advance(20) // let estimators warm up
//	_ = c.Put("user:1", []byte("alice"), nil, nil)
//	t, _ := c.Get("user:1")
//	fmt.Println(string(t.Value))
//
// The cluster runs in-process on a deterministic round-driven fabric:
// Advance moves background protocols (gossip, repair, estimation) along,
// while Put/Get/Scan/Aggregate step automatically until their operation
// completes. Use cmd/datadroplets for a TCP-networked node.
//
// # Pipelined operations
//
// The synchronous helpers drive the whole network for one operation at
// a time. For throughput, submit many operations and let them share
// gossip rounds: PutAsync/GetAsync/DeleteAsync return *Async handles
// immediately, Drain/Wait step the network while resolving every
// completed operation, and Batch/BatchPut wrap the submit-all-then-wait
// pattern with per-operation errors:
//
//	handles := make([]*datadroplets.Async, 0, 512)
//	for i := 0; i < 512; i++ {
//		handles = append(handles, c.PutAsync(fmt.Sprintf("k-%d", i), []byte("v"), nil, nil))
//	}
//	c.Wait() // all 512 writes share the same simulated rounds
//	for _, h := range handles {
//		if h.Err() != nil { /* per-op failure */ }
//	}
//
// Operations carry per-op deadlines, so a soft node can hold hundreds of
// pending requests and expire stragglers itself; a mixed 512-op batch
// completes in a small fraction of the rounds the serial path needs.
package datadroplets

import (
	"datadroplets/internal/core"
	"datadroplets/internal/epidemic"
	"datadroplets/internal/node"
	"datadroplets/internal/sim"
	"datadroplets/internal/tuple"
)

// Tuple is the public record type: a key, an opaque value, numeric
// attributes (placement, scans, aggregation) and correlation tags.
type Tuple = tuple.Tuple

// Version orders writes to one key.
type Version = tuple.Version

// AggResult carries aggregate estimates for one attribute. Sum/Avg come
// from push-sum gossip; Count (when non-zero) is the KMV distinct tuple
// count, which is immune to replication duplicates.
type AggResult struct {
	Avg, Min, Max, Sum float64
	Count              float64
	NEstimate          float64
}

// Sentinel errors re-exported from the engine.
var (
	ErrNotFound = core.ErrNotFound
	ErrTimeout  = core.ErrTimeout
)

type config struct {
	cluster core.ClusterConfig
}

// Option configures a Cluster.
type Option func(*config)

// WithNodes sets the persistent-layer size.
func WithNodes(n int) Option {
	return func(c *config) { c.cluster.PersistentNodes = n }
}

// WithSoftNodes sets the soft-state layer size.
func WithSoftNodes(n int) Option {
	return func(c *config) { c.cluster.SoftNodes = n }
}

// WithReplication sets the target copy count r.
func WithReplication(r int) Option {
	return func(c *config) { c.cluster.Persist.Replication = r }
}

// WithFanoutC sets the c in the dissemination fanout ln(N̂)+c.
func WithFanoutC(fc float64) Option {
	return func(c *config) { c.cluster.Persist.FanoutC = fc }
}

// WithSeed makes the deployment reproducible.
func WithSeed(seed int64) Option {
	return func(c *config) { c.cluster.Seed = seed }
}

// WithLoss sets the message loss probability of the fabric.
func WithLoss(p float64) Option {
	return func(c *config) { c.cluster.Loss = p }
}

// WithWorkers shards the fabric's compute phase across the given number
// of workers. Behaviour — every result, error and round count — is
// byte-identical at any setting (the simulator's deterministic two-phase
// executor); only wall-clock time changes. Call Close on the cluster
// when done to release the worker pool.
func WithWorkers(w int) Option {
	return func(c *config) { c.cluster.Workers = w }
}

// WithQuantileSieve enables distribution-aware placement and ordered
// range scans over attr.
func WithQuantileSieve(attr string) Option {
	return func(c *config) {
		c.cluster.Persist.Sieve = epidemic.SieveQuantile
		c.cluster.Persist.QuantileAttr = attr
		c.cluster.Persist.OrderAttr = true
	}
}

// WithTagSieve collocates tuples by primary tag.
func WithTagSieve() Option {
	return func(c *config) { c.cluster.Persist.Sieve = epidemic.SieveTag }
}

// WithAggregates enables continuous push-sum aggregation of the given
// attributes (use "count" for tuple counting). Counting additionally
// enables the duplicate-insensitive KMV sketch so the count is exact
// with respect to replication (unless a quantile sieve already claims
// the distribution estimator for its own attribute).
func WithAggregates(attrs ...string) Option {
	return func(c *config) {
		c.cluster.Persist.AggregateAttrs = attrs
		for _, a := range attrs {
			if a == "count" && c.cluster.Persist.QuantileAttr == "" {
				c.cluster.Persist.EstimateAttr = "count"
			}
		}
	}
}

// WithCacheSize sets the per-soft-node tuple cache capacity.
func WithCacheSize(n int) Option {
	return func(c *config) { c.cluster.Soft.CacheSize = n }
}

// WithAntiEntropy enables gossip digest repair every `rounds` rounds.
func WithAntiEntropy(rounds int) Option {
	return func(c *config) { c.cluster.Persist.AntiEntropyEvery = rounds }
}

// WithWriteAcks makes Put wait for n storage acknowledgements.
func WithWriteAcks(n int) Option {
	return func(c *config) { c.cluster.Soft.WriteAcks = n }
}

// WithReadRepair enables read-path repair: a Get that observes divergent
// versions among the responding replicas asynchronously pushes the
// winning tuple to the stale responders, so reads both resolve past
// stale copies (as always) and actively converge them.
func WithReadRepair() Option {
	return func(c *config) { c.cluster.ReadRepair = true }
}

// Cluster is an in-process DataDroplets deployment.
type Cluster struct {
	inner  *core.Cluster
	faults *Faults
}

// New builds and boots a cluster. Call Advance(≈20) before the first
// write so the size and distribution estimators have converged.
func New(opts ...Option) *Cluster {
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	return &Cluster{inner: core.NewCluster(cfg.cluster)}
}

// Advance runs the background protocols for n rounds.
func (c *Cluster) Advance(n int) { c.inner.Run(n) }

// Put stores value (and optional attributes/tags) under key, waiting for
// the configured number of storage acknowledgements.
func (c *Cluster) Put(key string, value []byte, attrs map[string]float64, tags []string) error {
	return c.inner.Put(key, value, attrs, tags)
}

// Get returns the latest tuple for key, or ErrNotFound.
func (c *Cluster) Get(key string) (*Tuple, error) {
	return c.inner.Get(key)
}

// Delete tombstones key.
func (c *Cluster) Delete(key string) error {
	return c.inner.Delete(key)
}

// Scan returns tuples whose quantile attribute lies in [lo, hi], walking
// the ordered overlay.
func (c *Cluster) Scan(attr string, lo, hi float64) ([]*Tuple, error) {
	return c.inner.Scan(attr, lo, hi, 200)
}

// Aggregate returns the continuous aggregate estimates for attr.
func (c *Cluster) Aggregate(attr string) (AggResult, error) {
	resp, err := c.inner.Aggregate(attr)
	if err != nil {
		return AggResult{}, err
	}
	return AggResult{
		Avg: resp.Avg, Min: resp.Min, Max: resp.Max, Sum: resp.Sum,
		Count: resp.Count, NEstimate: resp.NEstimate,
	}, nil
}

// Async is a handle to an in-flight operation submitted through
// PutAsync, GetAsync or DeleteAsync. It resolves while the network is
// stepped (Step, Drain, Wait, or any synchronous operation).
type Async struct {
	p *core.Pending
}

// Done reports whether the operation has resolved.
func (a *Async) Done() bool { return a.p.Done() }

// Err returns nil until the operation resolves, then nil on success,
// ErrNotFound for a missing key, ErrTimeout for an expired operation.
func (a *Async) Err() error { return a.p.Err() }

// Tuple returns the Get result once resolved (nil for writes and misses).
func (a *Async) Tuple() *Tuple { return a.p.Tuple() }

// PutAsync submits a write and returns immediately; the handle resolves
// as the network is stepped.
func (c *Cluster) PutAsync(key string, value []byte, attrs map[string]float64, tags []string) *Async {
	return &Async{p: c.inner.PutAsync(key, value, attrs, tags)}
}

// GetAsync submits a read and returns immediately.
func (c *Cluster) GetAsync(key string) *Async {
	return &Async{p: c.inner.GetAsync(key)}
}

// DeleteAsync submits a tombstone write and returns immediately.
func (c *Cluster) DeleteAsync(key string) *Async {
	return &Async{p: c.inner.DeleteAsync(key)}
}

// Step advances the simulation one round, delivering messages and
// resolving any operations they complete.
func (c *Cluster) Step() { c.inner.Step() }

// Round returns the current simulated round.
func (c *Cluster) Round() int { return int(c.inner.Net.Round()) }

// InFlight returns the number of unresolved async operations.
func (c *Cluster) InFlight() int { return c.inner.InFlightOps() }

// Drain steps the network until no submitted operation is in flight or
// maxRounds elapse, and returns the rounds stepped.
func (c *Cluster) Drain(maxRounds int) int { return c.inner.Drain(maxRounds) }

// Wait drains until every in-flight operation resolves (per-op deadlines
// bound the wait) and returns the rounds stepped.
func (c *Cluster) Wait() int { return c.inner.WaitAll() }

// OpKind distinguishes batched operations.
type OpKind = core.OpKind

// Batchable operation kinds.
const (
	OpPut    = core.OpPut
	OpGet    = core.OpGet
	OpDelete = core.OpDelete
)

// BatchOp describes one operation of a mixed batch.
type BatchOp = core.BatchOp

// BatchResult reports one batch operation's outcome.
type BatchResult = core.BatchResult

// Batch submits a mixed operation slice, waits for all of them sharing
// simulation rounds, and reports per-op results in input order.
func (c *Cluster) Batch(ops []BatchOp) []BatchResult {
	return c.inner.Batch(ops)
}

// PutOp describes one write of a BatchPut.
type PutOp struct {
	Key   string
	Value []byte
	Attrs map[string]float64
	Tags  []string
}

// BatchPut pipelines many writes through the cluster at once and
// returns one error slot per write, in input order.
func (c *Cluster) BatchPut(ops []PutOp) []error {
	batch := make([]BatchOp, len(ops))
	for i, o := range ops {
		batch[i] = BatchOp{Kind: OpPut, Key: o.Key, Value: o.Value, Attrs: o.Attrs, Tags: o.Tags}
	}
	res := c.Batch(batch)
	errs := make([]error, len(res))
	for i, r := range res {
		errs[i] = r.Err
	}
	return errs
}

// Faults is the cluster's deterministic fault schedule: scheduled
// partitions, slow nodes, latency spikes, member flapping and
// correlated crashes, applied to the persistent layer's fabric while
// client operations keep running. All schedule randomness derives from
// the cluster seed, so a faulted run is exactly reproducible — and
// byte-identical at every WithWorkers setting.
//
// Rounds are relative to the cluster's current round at the time the
// fault is added: start=0 means "starting now", and each fault stays
// active for length rounds. Node arguments are persistent-node indices
// (the same indexing KillNode uses).
type Faults struct {
	c  *Cluster
	sc *sim.Scenario
}

// Faults returns the cluster's fault schedule, installing it on first
// use. One-shot kills remain available directly via KillNode/ReviveNode.
func (c *Cluster) Faults() *Faults {
	if c.faults == nil {
		sc := sim.NewScenario(c.inner.Seed() ^ 0x0fa7157eed)
		c.inner.SetScenario(sc)
		c.faults = &Faults{c: c, sc: sc}
	}
	return c.faults
}

// ids maps persistent-node indices to fabric node IDs, skipping
// out-of-range indices.
func (f *Faults) ids(indices []int) []NodeID {
	all := f.c.inner.PersistentIDs()
	out := make([]NodeID, 0, len(indices))
	for _, i := range indices {
		if i >= 0 && i < len(all) {
			out = append(out, all[i])
		}
	}
	return out
}

func (f *Faults) window(start, length int) (sim.Round, sim.Round) {
	s := f.c.inner.Net.Round() + sim.Round(start)
	return s, s + sim.Round(length)
}

// msgWindow is window shifted for per-message faults: the fabric
// filters in-step traffic at the already-incremented round (see the
// sim package's window-clock note), so covering length full simulation
// steps needs one extra end round.
func (f *Faults) msgWindow(start, length int) (sim.Round, sim.Round) {
	s, e := f.window(start, length)
	return s, e + 1
}

// Partition splits the deployment for length rounds: traffic between
// different groups is dropped, then the partition heals. Nodes not
// listed in any group — including every soft-state (client-facing)
// node — share the implicit group 0. Partition(0, 50, farSide) is
// therefore the canonical split-brain as seen from this cluster's
// clients: the listed persistent nodes keep talking among themselves
// but are unreachable from the soft layer and the remaining persistent
// nodes until the heal. Listing several groups additionally cuts the
// listed sides off from each other.
func (f *Faults) Partition(start, length int, groups ...[]int) *Faults {
	s, e := f.msgWindow(start, length)
	idGroups := make([][]NodeID, len(groups))
	for i, g := range groups {
		idGroups[i] = f.ids(g)
	}
	f.sc.AddPartition("partition", s, e, idGroups...)
	return f
}

// SlowNodes degrades the listed nodes for length rounds: every message
// to or from them is dropped with probability loss and delayed by
// extraDelay additional rounds.
func (f *Faults) SlowNodes(start, length, extraDelay int, loss float64, indices ...int) *Faults {
	s, e := f.msgWindow(start, length)
	for _, id := range f.ids(indices) {
		f.sc.AddSlowNode("slow-node", s, e, id, loss, extraDelay, 0)
	}
	return f
}

// LatencySpike delays every message by extraDelay plus uniform jitter
// in [0, jitter] rounds for length rounds.
func (f *Faults) LatencySpike(start, length, extraDelay, jitter int) *Faults {
	s, e := f.msgWindow(start, length)
	f.sc.AddLatencySpike("latency-spike", s, e, extraDelay, jitter, 0)
	return f
}

// Flap cycles the listed nodes down and up for length rounds: down for
// downFor rounds at the start of every period. Everyone is revived when
// the window closes.
func (f *Faults) Flap(start, length, period, downFor int, indices ...int) *Faults {
	s, e := f.window(start, length)
	f.sc.AddFlap("flap", s, e, period, downFor, f.ids(indices)...)
	return f
}

// MassCrash fails the given fraction of then-alive persistent nodes
// simultaneously `start` rounds from now (transiently — durable state
// survives); the cohort revives together reviveAfter rounds later. The
// soft (client-facing) layer is never in the cohort, keeping the
// Faults contract that client operations continue during faults.
func (f *Faults) MassCrash(start int, fraction float64, reviveAfter int) *Faults {
	at, _ := f.window(start, 0)
	f.sc.AddMassCrashIn("mass-crash", at, f.c.inner.PersistentIDs(), fraction, false, reviveAfter)
	return f
}

// KillNode takes a persistent node down (transient when permanent is
// false) — failure injection for demos and tests.
func (c *Cluster) KillNode(index int, permanent bool) {
	ids := c.inner.PersistentIDs()
	if index >= 0 && index < len(ids) {
		c.inner.Net.Kill(ids[index], permanent)
	}
}

// ReviveNode brings a transiently failed persistent node back.
func (c *Cluster) ReviveNode(index int) {
	ids := c.inner.PersistentIDs()
	if index >= 0 && index < len(ids) {
		c.inner.Net.Revive(ids[index])
	}
}

// Holders reports how many alive persistent nodes store key.
func (c *Cluster) Holders(key string) int {
	return c.inner.PersistentHolders(key)
}

// Nodes returns the persistent-layer size (alive).
func (c *Cluster) Nodes() int {
	n := 0
	for _, id := range c.inner.PersistentIDs() {
		if c.inner.Net.Alive(id) {
			n++
		}
	}
	return n
}

// NEstimate returns one node's current epidemic estimate of the system
// size.
func (c *Cluster) NEstimate() float64 {
	for _, id := range c.inner.PersistentIDs() {
		if c.inner.Net.Alive(id) {
			return c.inner.Pers[id].NEstimate()
		}
	}
	return 0
}

// WipeSoftLayer simulates catastrophic soft-state loss.
func (c *Cluster) WipeSoftLayer() { c.inner.WipeSoftLayer() }

// RecoverSoftLayer rebuilds soft-state metadata from the persistent
// layer; returns the number of recovered keys.
func (c *Cluster) RecoverSoftLayer() (int, error) {
	return c.inner.RecoverSoftLayer(8, 1<<20, 200)
}

// Close releases the cluster's fabric worker pool (a no-op for the
// default serial fabric).
func (c *Cluster) Close() { c.inner.Close() }

// NodeID is re-exported for tooling that inspects per-node state.
type NodeID = node.ID
