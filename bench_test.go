// Package-level benchmarks: one per reproduced figure/table (docs/DESIGN.md
// §2). Each benchmark executes the corresponding experiment driver at a
// reduced scale per iteration — wall time is the cost of regenerating
// that result. Run the full-scale versions with cmd/ddbench:
//
//	go test -bench=BenchmarkC8 -benchmem          # quick shape check
//	go run ./cmd/ddbench -run C8 -scale 1         # paper-scale tables
package datadroplets

import (
	"testing"

	"datadroplets/internal/experiments"
)

// benchScale keeps per-iteration cost low; the drivers clamp populations
// to statistically meaningful minimums.
const benchScale = 0.05

func runExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Params{
			Scale: benchScale,
			Seed:  int64(1000 + i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("no tables produced")
		}
	}
}

// BenchmarkF1Architecture regenerates the Figure 1 full-stack exercise.
func BenchmarkF1Architecture(b *testing.B) { runExperiment(b, "F1") }

// BenchmarkC1AtomicInfection regenerates P(atomic) vs c (the ln(N)+c law).
func BenchmarkC1AtomicInfection(b *testing.B) { runExperiment(b, "C1") }

// BenchmarkC2WorkedExample regenerates the N=50000, c=7 worked example.
func BenchmarkC2WorkedExample(b *testing.B) { runExperiment(b, "C2") }

// BenchmarkC3Tradeoff regenerates the effort/coverage/redundancy curve.
func BenchmarkC3Tradeoff(b *testing.B) { runExperiment(b, "C3") }

// BenchmarkC4Sieve regenerates sieve balance/coverage/heterogeneity.
func BenchmarkC4Sieve(b *testing.B) { runExperiment(b, "C4") }

// BenchmarkC5SizeEstimation regenerates extrema-propagation accuracy.
func BenchmarkC5SizeEstimation(b *testing.B) { runExperiment(b, "C5") }

// BenchmarkC6RandomWalk regenerates walk-based replica estimation.
func BenchmarkC6RandomWalk(b *testing.B) { runExperiment(b, "C6") }

// BenchmarkC7Repair regenerates redundancy maintenance under churn.
func BenchmarkC7Repair(b *testing.B) { runExperiment(b, "C7") }

// BenchmarkC8ChurnAvailability regenerates epidemic vs structured DHT.
func BenchmarkC8ChurnAvailability(b *testing.B) { runExperiment(b, "C8") }

// BenchmarkC9Distribution regenerates gossip distribution estimation.
func BenchmarkC9Distribution(b *testing.B) { runExperiment(b, "C9") }

// BenchmarkC10Collocation regenerates placement-family comparison.
func BenchmarkC10Collocation(b *testing.B) { runExperiment(b, "C10") }

// BenchmarkC11Ordering regenerates ordered-overlay convergence and scans.
func BenchmarkC11Ordering(b *testing.B) { runExperiment(b, "C11") }

// BenchmarkC12Aggregation regenerates push-sum accuracy under churn.
func BenchmarkC12Aggregation(b *testing.B) { runExperiment(b, "C12") }

// BenchmarkC13Cache regenerates the soft-state cache hit-ratio study.
func BenchmarkC13Cache(b *testing.B) { runExperiment(b, "C13") }

// BenchmarkC14Recovery regenerates soft-state metadata reconstruction.
func BenchmarkC14Recovery(b *testing.B) { runExperiment(b, "C14") }

// benchThroughput drives the canonical 512-op mixed workload (50/50
// read/write, uniform keys) through a fresh default 32-node cluster per
// iteration at the given in-flight window, reporting simulated rounds
// and ops/round alongside wall time.
func benchThroughput(b *testing.B, window int) {
	b.ReportAllocs()
	totalRounds, totalOps := 0, 0
	for i := 0; i < b.N; i++ {
		c := throughputCluster(int64(100 + i))
		res := mixedLoop(c, window, int64(900+i))
		if res.Ops != 512 {
			b.Fatalf("completed %d ops, want 512", res.Ops)
		}
		totalRounds += res.Rounds
		totalOps += res.Ops
		c.Close()
	}
	b.ReportMetric(float64(totalRounds)/float64(b.N), "rounds/workload")
	b.ReportMetric(float64(totalOps)/float64(totalRounds), "ops/round")
}

// BenchmarkThroughputSerial is the old client model: one op in flight,
// the whole network advancing for it alone.
func BenchmarkThroughputSerial(b *testing.B) { benchThroughput(b, 1) }

// BenchmarkThroughputPipelined shares gossip rounds across a 64-op
// in-flight window — the pipelined engine's headline win (≥5× fewer
// simulated rounds than serial; see TestThroughputPipelinedVsSerial).
func BenchmarkThroughputPipelined(b *testing.B) { benchThroughput(b, 64) }

// BenchmarkPutGet measures the end-to-end client path of the public API
// (per-operation cost on an in-process 32-node cluster).
func BenchmarkPutGet(b *testing.B) {
	c := New(WithNodes(32), WithSoftNodes(2), WithReplication(3),
		WithFanoutC(2), WithSeed(99))
	defer c.Close()
	c.Advance(20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := "bench-key"
		if err := c.Put(key, []byte("value"), nil, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}
